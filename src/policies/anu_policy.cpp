#include "policies/anu_policy.h"

namespace anufs::policy {

std::map<FileSetId, ServerId> AnuPolicy::derive_assignment() const {
  // Batched re-derivation: one locate_many sweep (SoA probe rounds over
  // the whole working set) replaces chasing each file set's probe chain
  // to completion. Fingerprints are gathered in file_sets_ order, so the
  // placement cache sees exactly the lookup sequence the scalar loop
  // used to issue — hit/miss accounting and post-call cache state are
  // unchanged.
  fps_scratch_.resize(file_sets_.size());
  locate_scratch_.resize(file_sets_.size());
  for (std::size_t i = 0; i < file_sets_.size(); ++i) {
    fps_scratch_[i] = file_sets_[i].fingerprint;
  }
  system_->locate_many(fps_scratch_, locate_scratch_);
  std::map<FileSetId, ServerId> next;
  for (std::size_t i = 0; i < file_sets_.size(); ++i) {
    next[file_sets_[i].id] = locate_scratch_[i].server;
  }
  return next;
}

void AnuPolicy::initialize(
    const std::vector<workload::FileSetSpec>& file_sets,
    const std::vector<ServerId>& servers) {
  ANUFS_EXPECTS(!servers.empty());
  file_sets_ = file_sets;
  set_servers(servers);
  system_ = std::make_unique<core::AnuSystem>(config_, servers_);
  assignment_ = derive_assignment();
  commit_assignment();
}

std::vector<Move> AnuPolicy::rebalance(
    sim::SimTime /*now*/, const std::vector<core::ServerReport>& reports) {
  const core::TuneDecision decision = system_->reconfigure(reports);
  if (!decision.acted) return {};
  return apply_assignment(derive_assignment());
}

std::vector<Move> AnuPolicy::on_server_failed(ServerId id) {
  remove_server_id(id);
  system_->fail_server(id);
  return apply_assignment(derive_assignment());
}

std::vector<Move> AnuPolicy::on_server_added(ServerId id) {
  add_server_id(id);
  system_->add_server(id);
  return apply_assignment(derive_assignment());
}

}  // namespace anufs::policy
