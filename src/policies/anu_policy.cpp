#include "policies/anu_policy.h"

namespace anufs::policy {

std::map<FileSetId, ServerId> AnuPolicy::derive_assignment() const {
  std::map<FileSetId, ServerId> next;
  for (const workload::FileSetSpec& fs : file_sets_) {
    next[fs.id] = system_->locate(fs.fingerprint);
  }
  return next;
}

void AnuPolicy::initialize(
    const std::vector<workload::FileSetSpec>& file_sets,
    const std::vector<ServerId>& servers) {
  ANUFS_EXPECTS(!servers.empty());
  file_sets_ = file_sets;
  set_servers(servers);
  system_ = std::make_unique<core::AnuSystem>(config_, servers_);
  assignment_ = derive_assignment();
  commit_assignment();
}

std::vector<Move> AnuPolicy::rebalance(
    sim::SimTime /*now*/, const std::vector<core::ServerReport>& reports) {
  const core::TuneDecision decision = system_->reconfigure(reports);
  if (!decision.acted) return {};
  return apply_assignment(derive_assignment());
}

std::vector<Move> AnuPolicy::on_server_failed(ServerId id) {
  remove_server_id(id);
  system_->fail_server(id);
  return apply_assignment(derive_assignment());
}

std::vector<Move> AnuPolicy::on_server_added(ServerId id) {
  add_server_id(id);
  system_->add_server(id);
  return apply_assignment(derive_assignment());
}

}  // namespace anufs::policy
