// Deterministic fault-injection plans.
//
// A FaultPlan is a declarative schedule of failures that a simulation
// replays through its event scheduler: server crashes and recoveries,
// commissioning of fresh servers, "limping" episodes (a server running
// at a fraction of its commissioned speed), SAN latency-degradation
// windows, and flaky file-set movement (transfers that fail and retry
// with backoff). Because every injected fault flows through the same
// (time, insertion-sequence)-ordered scheduler queue as regular events,
// a plan replays bit-identically for a given seed regardless of the
// --jobs count — the same reproducibility contract as sweeps.
//
// Plan grammar (line-oriented; '#' starts a comment):
//
//   crash <time> <server>                 # server crashes at <time>
//   recover <time> <server>               # crashed server rejoins
//   add <time> <server> <speed>           # commission a NEW server id
//   limp <begin> <end> <server> <factor>  # speed *= factor in [begin,end)
//   san_slow <begin> <end> <factor>       # SAN transfers *= factor
//   move_flaky <begin> <end> <prob> <max_retries> <backoff>
//                                         # moves fail w.p. <prob>; each
//                                         # failed attempt costs backoff
//                                         # + a fresh transfer attempt
//
// Validation enforces the schedule's well-formedness (a server crashes
// only while alive, recovers only while crashed, windows are ordered
// and non-overlapping per subject) so a malformed plan is rejected up
// front instead of tripping a simulator contract mid-run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/ids.h"

namespace anufs::fault {

struct CrashEvent {
  double time = 0.0;
  std::uint32_t server = 0;
};

struct RecoverEvent {
  double time = 0.0;
  std::uint32_t server = 0;
};

struct AddEvent {
  double time = 0.0;
  std::uint32_t server = 0;
  double speed = 1.0;
};

/// Slow-server episode: the server's effective speed is its
/// commissioned speed times `factor` for the window. factor > 1 models
/// a burst upgrade; factor in (0, 1) models the "limping but not dead"
/// server every heterogeneous-cluster paper warns about.
struct LimpWindow {
  double begin = 0.0;
  double end = 0.0;
  std::uint32_t server = 0;
  double factor = 0.5;
};

/// SAN degradation: every data transfer started in the window takes
/// `factor` times as long (congestion, a degraded RAID rebuild...).
struct SanSlowWindow {
  double begin = 0.0;
  double end = 0.0;
  double factor = 2.0;
};

/// Flaky file-set movement: each move attempted in the window fails
/// with `probability` per attempt (up to `max_retries` failures), and
/// each failed attempt costs `backoff` seconds plus a fresh transfer
/// attempt before the set is available again.
struct MoveFlakyWindow {
  double begin = 0.0;
  double end = 0.0;
  double probability = 0.0;
  std::uint32_t max_retries = 3;
  double backoff = 2.0;
};

struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<RecoverEvent> recoveries;
  std::vector<AddEvent> additions;
  std::vector<LimpWindow> limps;
  std::vector<SanSlowWindow> san_slowdowns;
  std::vector<MoveFlakyWindow> flaky_moves;

  [[nodiscard]] bool empty() const noexcept {
    return crashes.empty() && recoveries.empty() && additions.empty() &&
           limps.empty() && san_slowdowns.empty() && flaky_moves.empty();
  }

  [[nodiscard]] std::size_t event_count() const noexcept {
    return crashes.size() + recoveries.size() + additions.size() +
           limps.size() + san_slowdowns.size() + flaky_moves.size();
  }
};

/// Parse a plan; aborts with a line diagnostic on malformed input
/// (mirrors driver::parse_scenario's contract).
[[nodiscard]] FaultPlan parse_fault_plan(std::istream& is);

/// Parse from a string (tests, inline configs).
[[nodiscard]] FaultPlan parse_fault_plan_text(const std::string& text);

/// Parse a single directive line ("crash 300 2"); aborts on error.
/// Used for inline `fault <directive>` scenario keys.
void parse_fault_directive(const std::string& line, FaultPlan& plan);

/// Load a plan from a file; aborts if the file cannot be opened.
[[nodiscard]] FaultPlan load_fault_plan(const std::string& path);

/// Serialize back to the grammar above. parse(to_text(p)) == p up to
/// event ordering (events are emitted sorted by time).
[[nodiscard]] std::string to_text(const FaultPlan& plan);

/// Check a plan against a cluster of `n_initial_servers` (ids
/// 0..n-1): every referenced server exists (or is introduced by `add`),
/// crash/recover alternate correctly per server, at least `min_alive`
/// servers remain alive at every instant, windows are well-formed and
/// non-overlapping per subject, probabilities/factors are in range.
/// Returns human-readable problems; empty == valid.
[[nodiscard]] std::vector<std::string> validate(
    const FaultPlan& plan, std::uint32_t n_initial_servers,
    std::uint32_t min_alive = 1);

/// validate() and abort with the full problem list on failure.
void validate_or_die(const FaultPlan& plan, std::uint32_t n_initial_servers,
                     std::uint32_t min_alive = 1);

/// Knobs for random plan generation (property tests, fuzzing).
struct RandomPlanConfig {
  double duration = 400.0;        ///< events land in [0.05, 0.95]*duration
  std::uint32_t n_servers = 5;    ///< initial cluster size (ids 0..n-1)
  std::uint32_t max_crashes = 3;  ///< crash/recover pairs to attempt
  std::uint32_t max_limps = 2;
  std::uint32_t max_san_slowdowns = 1;
  std::uint32_t max_flaky_windows = 1;
  std::uint32_t max_additions = 1;
  std::uint32_t min_alive = 2;    ///< never crash below this
  /// Minimum crash -> recover gap. Must exceed the failure detector's
  /// timeout + sweep interval when the detector is enabled, or the
  /// recovery could land before the failure is even declared (which
  /// ClusterSim rejects by contract).
  double min_recover_gap = 30.0;
};

/// Generate a valid random plan, deterministic in `seed`. The result
/// always passes validate(plan, config.n_servers, config.min_alive).
[[nodiscard]] FaultPlan make_random_plan(const RandomPlanConfig& config,
                                         std::uint64_t seed);

}  // namespace anufs::fault
