#include "fault/fault_injector.h"

#include <algorithm>

#include "obs/trace.h"

namespace anufs::fault {

namespace {

template <typename Event>
std::vector<Event> sorted_by_time(std::vector<Event> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.time < b.time;
                   });
  return events;
}

template <typename Window>
std::vector<Window> sorted_by_begin(std::vector<Window> windows) {
  std::stable_sort(windows.begin(), windows.end(),
                   [](const Window& a, const Window& b) {
                     return a.begin < b.begin;
                   });
  return windows;
}

}  // namespace

void install_fault_plan(cluster::ClusterSim& sim,
                        std::uint32_t n_initial_servers,
                        const FaultPlan& plan) {
  validate_or_die(plan, n_initial_servers);
  sim::Scheduler& sched = sim.scheduler();

  // Membership: recoveries and additions before crashes so that a
  // same-instant recover+crash pair on one server means "bounced", the
  // order validate() assumes.
  for (const RecoverEvent& e : sorted_by_time(plan.recoveries)) {
    sim.schedule_recovery(e.time, ServerId{e.server});
  }
  for (const AddEvent& e : sorted_by_time(plan.additions)) {
    sim.schedule_addition(e.time, ServerId{e.server}, e.speed);
  }
  for (const CrashEvent& e : sorted_by_time(plan.crashes)) {
    sim.schedule_failure(e.time, ServerId{e.server});
  }

  // Windows: begin/end pairs installed in start order, so a window
  // ending exactly where the next begins closes before the next opens.
  for (const LimpWindow& w : sorted_by_begin(plan.limps)) {
    sched.schedule_at(w.begin, [&sim, w] {
      ANUFS_TRACE(obs::Category::kFault, "limp_begin",
                  {"server", w.server}, {"factor", w.factor});
      sim.set_speed_factor(ServerId{w.server}, w.factor);
    });
    sched.schedule_at(w.end, [&sim, w] {
      ANUFS_TRACE(obs::Category::kFault, "limp_end", {"server", w.server});
      sim.set_speed_factor(ServerId{w.server}, 1.0);
    });
  }
  for (const SanSlowWindow& w : sorted_by_begin(plan.san_slowdowns)) {
    sched.schedule_at(w.begin, [&sim, w] {
      ANUFS_TRACE(obs::Category::kFault, "san_slow_begin",
                  {"factor", w.factor});
      sim.set_san_slowdown(w.factor);
    });
    sched.schedule_at(w.end, [&sim] {
      ANUFS_TRACE(obs::Category::kFault, "san_slow_end");
      sim.set_san_slowdown(1.0);
    });
  }
  for (const MoveFlakyWindow& w : sorted_by_begin(plan.flaky_moves)) {
    sched.schedule_at(w.begin, [&sim, w] {
      ANUFS_TRACE(obs::Category::kFault, "move_flaky_begin",
                  {"probability", w.probability},
                  {"max_retries", w.max_retries}, {"backoff", w.backoff});
      sim.set_move_fault(cluster::MoveFaultSpec{
          w.probability, w.max_retries, w.backoff});
    });
    sched.schedule_at(w.end, [&sim] {
      ANUFS_TRACE(obs::Category::kFault, "move_flaky_end");
      sim.clear_move_fault();
    });
  }
}

}  // namespace anufs::fault
