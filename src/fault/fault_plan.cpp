#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <set>
#include <sstream>

#include "common/check.h"
#include "sim/random.h"

namespace anufs::fault {

namespace {

[[noreturn]] void plan_failure(std::size_t line_no, const std::string& what) {
  std::fprintf(stderr, "anufs-fault-plan: line %zu: %s\n", line_no,
               what.c_str());
  std::abort();
}

double want_double(std::istringstream& ss, std::size_t line_no,
                   const char* what) {
  std::string token;
  if (!(ss >> token)) plan_failure(line_no, std::string("missing ") + what);
  try {
    return std::stod(token);
  } catch (...) {
    plan_failure(line_no, std::string("bad ") + what + " '" + token + "'");
  }
}

std::uint32_t want_u32(std::istringstream& ss, std::size_t line_no,
                       const char* what) {
  std::string token;
  if (!(ss >> token)) plan_failure(line_no, std::string("missing ") + what);
  try {
    return static_cast<std::uint32_t>(std::stoul(token));
  } catch (...) {
    plan_failure(line_no, std::string("bad ") + what + " '" + token + "'");
  }
}

void expect_end(std::istringstream& ss, std::size_t line_no) {
  std::string extra;
  if (ss >> extra) plan_failure(line_no, "trailing token '" + extra + "'");
}

void parse_line(const std::string& raw, std::size_t line_no,
                FaultPlan& plan) {
  std::string line = raw;
  if (const auto hash_pos = line.find('#'); hash_pos != std::string::npos) {
    line.resize(hash_pos);
  }
  std::istringstream ss(line);
  std::string key;
  if (!(ss >> key)) return;
  if (key == "crash") {
    CrashEvent e;
    e.time = want_double(ss, line_no, "time");
    e.server = want_u32(ss, line_no, "server");
    plan.crashes.push_back(e);
  } else if (key == "recover") {
    RecoverEvent e;
    e.time = want_double(ss, line_no, "time");
    e.server = want_u32(ss, line_no, "server");
    plan.recoveries.push_back(e);
  } else if (key == "add") {
    AddEvent e;
    e.time = want_double(ss, line_no, "time");
    e.server = want_u32(ss, line_no, "server");
    e.speed = want_double(ss, line_no, "speed");
    plan.additions.push_back(e);
  } else if (key == "limp") {
    LimpWindow w;
    w.begin = want_double(ss, line_no, "begin");
    w.end = want_double(ss, line_no, "end");
    w.server = want_u32(ss, line_no, "server");
    w.factor = want_double(ss, line_no, "factor");
    plan.limps.push_back(w);
  } else if (key == "san_slow") {
    SanSlowWindow w;
    w.begin = want_double(ss, line_no, "begin");
    w.end = want_double(ss, line_no, "end");
    w.factor = want_double(ss, line_no, "factor");
    plan.san_slowdowns.push_back(w);
  } else if (key == "move_flaky") {
    MoveFlakyWindow w;
    w.begin = want_double(ss, line_no, "begin");
    w.end = want_double(ss, line_no, "end");
    w.probability = want_double(ss, line_no, "probability");
    w.max_retries = want_u32(ss, line_no, "max_retries");
    w.backoff = want_double(ss, line_no, "backoff");
    plan.flaky_moves.push_back(w);
  } else {
    plan_failure(line_no, "unknown directive '" + key + "'");
  }
  expect_end(ss, line_no);
}

}  // namespace

FaultPlan parse_fault_plan(std::istream& is) {
  FaultPlan plan;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    parse_line(line, line_no, plan);
  }
  return plan;
}

FaultPlan parse_fault_plan_text(const std::string& text) {
  std::istringstream is(text);
  return parse_fault_plan(is);
}

void parse_fault_directive(const std::string& line, FaultPlan& plan) {
  parse_line(line, /*line_no=*/1, plan);
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "anufs-fault-plan: cannot open %s\n", path.c_str());
    std::abort();
  }
  return parse_fault_plan(in);
}

std::string to_text(const FaultPlan& plan) {
  // Emit each group sorted by time so the output is canonical: parsing
  // it back yields a plan with identical semantics.
  const auto by_time = [](const auto& a, const auto& b) {
    return a.time < b.time;
  };
  const auto by_begin = [](const auto& a, const auto& b) {
    return a.begin < b.begin;
  };
  FaultPlan p = plan;
  std::stable_sort(p.crashes.begin(), p.crashes.end(), by_time);
  std::stable_sort(p.recoveries.begin(), p.recoveries.end(), by_time);
  std::stable_sort(p.additions.begin(), p.additions.end(), by_time);
  std::stable_sort(p.limps.begin(), p.limps.end(), by_begin);
  std::stable_sort(p.san_slowdowns.begin(), p.san_slowdowns.end(), by_begin);
  std::stable_sort(p.flaky_moves.begin(), p.flaky_moves.end(), by_begin);

  std::ostringstream os;
  for (const CrashEvent& e : p.crashes) {
    os << "crash " << e.time << " " << e.server << "\n";
  }
  for (const RecoverEvent& e : p.recoveries) {
    os << "recover " << e.time << " " << e.server << "\n";
  }
  for (const AddEvent& e : p.additions) {
    os << "add " << e.time << " " << e.server << " " << e.speed << "\n";
  }
  for (const LimpWindow& w : p.limps) {
    os << "limp " << w.begin << " " << w.end << " " << w.server << " "
       << w.factor << "\n";
  }
  for (const SanSlowWindow& w : p.san_slowdowns) {
    os << "san_slow " << w.begin << " " << w.end << " " << w.factor << "\n";
  }
  for (const MoveFlakyWindow& w : p.flaky_moves) {
    os << "move_flaky " << w.begin << " " << w.end << " " << w.probability
       << " " << w.max_retries << " " << w.backoff << "\n";
  }
  return os.str();
}

namespace {

/// One membership transition on the validation timeline. Same-instant
/// ties process recover/add before crash — the order the injector
/// installs them — so "recover 100 2" + "crash 100 2" is legal and
/// means "bounced at t=100".
struct Transition {
  double time = 0.0;
  enum class Kind { kRecover = 0, kAdd = 1, kCrash = 2 } kind = Kind::kCrash;
  std::uint32_t server = 0;
  double speed = 1.0;
};

std::vector<Transition> membership_timeline(const FaultPlan& plan) {
  std::vector<Transition> timeline;
  for (const RecoverEvent& e : plan.recoveries) {
    timeline.push_back({e.time, Transition::Kind::kRecover, e.server, 1.0});
  }
  for (const AddEvent& e : plan.additions) {
    timeline.push_back({e.time, Transition::Kind::kAdd, e.server, e.speed});
  }
  for (const CrashEvent& e : plan.crashes) {
    timeline.push_back({e.time, Transition::Kind::kCrash, e.server, 1.0});
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const Transition& a, const Transition& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return static_cast<int>(a.kind) <
                            static_cast<int>(b.kind);
                   });
  return timeline;
}

template <typename Window>
void check_windows(std::vector<Window> windows, const char* what,
                   std::vector<std::string>& problems) {
  std::stable_sort(windows.begin(), windows.end(),
                   [](const Window& a, const Window& b) {
                     return a.begin < b.begin;
                   });
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (!(windows[i].begin >= 0.0 && windows[i].begin < windows[i].end)) {
      problems.push_back(std::string(what) + " window [" +
                         std::to_string(windows[i].begin) + ", " +
                         std::to_string(windows[i].end) +
                         ") is not a forward interval");
    }
    if (i > 0 && windows[i].begin < windows[i - 1].end) {
      problems.push_back(std::string(what) + " windows overlap at t=" +
                         std::to_string(windows[i].begin));
    }
  }
}

}  // namespace

std::vector<std::string> validate(const FaultPlan& plan,
                                  std::uint32_t n_initial_servers,
                                  std::uint32_t min_alive) {
  std::vector<std::string> problems;
  const auto note = [&problems](std::string p) {
    problems.push_back(std::move(p));
  };

  std::set<std::uint32_t> alive;
  std::set<std::uint32_t> known;
  // Commission time per server: initial servers exist from t=0; added
  // servers only from their add time (limp windows must not start
  // before the server exists).
  std::map<std::uint32_t, double> commissioned_at;
  for (std::uint32_t i = 0; i < n_initial_servers; ++i) {
    alive.insert(i);
    known.insert(i);
    commissioned_at[i] = 0.0;
  }

  for (const Transition& t : membership_timeline(plan)) {
    switch (t.kind) {
      case Transition::Kind::kCrash:
        if (t.time < 0.0) note("crash at negative time");
        if (!known.contains(t.server)) {
          note("crash of unknown server " + std::to_string(t.server));
        } else if (!alive.contains(t.server)) {
          note("crash of already-crashed server " + std::to_string(t.server) +
               " at t=" + std::to_string(t.time));
        } else if (alive.size() <= min_alive) {
          note("crash at t=" + std::to_string(t.time) + " would leave " +
               std::to_string(alive.size() - 1) + " alive servers (< " +
               std::to_string(min_alive) + " required)");
        } else {
          alive.erase(t.server);
        }
        break;
      case Transition::Kind::kRecover:
        if (!known.contains(t.server)) {
          note("recovery of unknown server " + std::to_string(t.server));
        } else if (alive.contains(t.server)) {
          note("recovery of alive server " + std::to_string(t.server) +
               " at t=" + std::to_string(t.time));
        } else {
          alive.insert(t.server);
        }
        break;
      case Transition::Kind::kAdd:
        if (known.contains(t.server)) {
          note("addition reuses existing server id " +
               std::to_string(t.server) + " (use recover instead)");
        } else {
          known.insert(t.server);
          alive.insert(t.server);
          commissioned_at[t.server] = t.time;
        }
        if (t.speed <= 0.0) note("added server with non-positive speed");
        break;
    }
  }

  // Limp windows: per-server, ordered, on servers that exist by then.
  std::map<std::uint32_t, std::vector<LimpWindow>> limps_by_server;
  for (const LimpWindow& w : plan.limps) {
    if (w.factor <= 0.0) {
      note("limp factor must be > 0, got " + std::to_string(w.factor));
    }
    if (!known.contains(w.server)) {
      note("limp window on unknown server " + std::to_string(w.server));
    } else if (w.begin < commissioned_at[w.server]) {
      note("limp window on server " + std::to_string(w.server) +
           " begins before the server is commissioned");
    }
    limps_by_server[w.server].push_back(w);
  }
  for (auto& [server, windows] : limps_by_server) {
    check_windows(std::move(windows),
                  ("limp(server " + std::to_string(server) + ")").c_str(),
                  problems);
  }

  for (const SanSlowWindow& w : plan.san_slowdowns) {
    if (w.factor <= 0.0) {
      note("san_slow factor must be > 0, got " + std::to_string(w.factor));
    }
  }
  check_windows(plan.san_slowdowns, "san_slow", problems);

  for (const MoveFlakyWindow& w : plan.flaky_moves) {
    if (w.probability < 0.0 || w.probability > 1.0) {
      note("move_flaky probability must be in [0, 1], got " +
           std::to_string(w.probability));
    }
    if (w.backoff < 0.0) note("move_flaky backoff must be >= 0");
  }
  check_windows(plan.flaky_moves, "move_flaky", problems);

  return problems;
}

void validate_or_die(const FaultPlan& plan, std::uint32_t n_initial_servers,
                     std::uint32_t min_alive) {
  const std::vector<std::string> problems =
      validate(plan, n_initial_servers, min_alive);
  if (problems.empty()) return;
  std::fprintf(stderr, "anufs-fault-plan: invalid plan:\n");
  for (const std::string& p : problems) {
    std::fprintf(stderr, "  - %s\n", p.c_str());
  }
  std::abort();
}

FaultPlan make_random_plan(const RandomPlanConfig& config,
                           std::uint64_t seed) {
  ANUFS_EXPECTS(config.duration > 0.0 && config.n_servers >= 1);
  ANUFS_EXPECTS(config.min_alive >= 1);
  sim::Xoshiro256 rng = sim::make_stream(seed, "fault-plan");
  FaultPlan plan;
  const double d = config.duration;
  const auto uniform = [&rng](double lo, double hi) {
    return lo + (hi - lo) * rng.next_double();
  };

  // Crash/recover pairs, simulated over a little timeline so the plan
  // never dips below min_alive and never double-crashes a server.
  std::set<std::uint32_t> alive;
  for (std::uint32_t i = 0; i < config.n_servers; ++i) alive.insert(i);
  std::vector<std::pair<double, std::uint32_t>> pending_recoveries;
  const std::uint64_t n_crashes =
      config.max_crashes == 0 ? 0 : rng.next_below(config.max_crashes + 1);
  std::vector<double> crash_times;
  for (std::uint64_t i = 0; i < n_crashes; ++i) {
    crash_times.push_back(uniform(0.05 * d, 0.7 * d));
  }
  std::sort(crash_times.begin(), crash_times.end());
  for (const double t : crash_times) {
    // Recoveries scheduled before this crash have happened by now.
    for (auto it = pending_recoveries.begin();
         it != pending_recoveries.end();) {
      if (it->first <= t) {
        alive.insert(it->second);
        it = pending_recoveries.erase(it);
      } else {
        ++it;
      }
    }
    if (alive.size() <= config.min_alive) continue;
    const auto victim_it =
        std::next(alive.begin(),
                  static_cast<std::ptrdiff_t>(rng.next_below(alive.size())));
    const std::uint32_t victim = *victim_it;
    alive.erase(victim_it);
    plan.crashes.push_back({t, victim});
    // Most crashed servers come back after the recover gap; some stay
    // dead for the rest of the run.
    const double recover_at = t + config.min_recover_gap + uniform(0.0, d / 4);
    if (rng.next_double() < 0.75 && recover_at < 0.95 * d) {
      plan.recoveries.push_back({recover_at, victim});
      pending_recoveries.emplace_back(recover_at, victim);
    }
  }

  const std::uint64_t n_adds =
      config.max_additions == 0 ? 0 : rng.next_below(config.max_additions + 1);
  for (std::uint64_t i = 0; i < n_adds; ++i) {
    plan.additions.push_back(
        {uniform(0.1 * d, 0.8 * d),
         config.n_servers + static_cast<std::uint32_t>(i),
         uniform(1.0, 9.0)});
  }

  // Limp windows on distinct initial servers (distinctness sidesteps
  // per-server overlap).
  const std::uint64_t n_limps =
      config.max_limps == 0
          ? 0
          : rng.next_below(
                std::min<std::uint64_t>(config.max_limps, config.n_servers) +
                1);
  std::vector<std::uint32_t> limp_pool;
  for (std::uint32_t i = 0; i < config.n_servers; ++i) limp_pool.push_back(i);
  for (std::uint64_t i = 0; i < n_limps; ++i) {
    const std::uint64_t pick = rng.next_below(limp_pool.size());
    const std::uint32_t server = limp_pool[pick];
    limp_pool.erase(limp_pool.begin() + static_cast<std::ptrdiff_t>(pick));
    const double begin = uniform(0.05 * d, 0.75 * d);
    plan.limps.push_back(
        {begin, begin + uniform(0.05 * d, 0.2 * d), server,
         uniform(0.2, 0.9)});
  }

  if (config.max_san_slowdowns > 0 && rng.next_below(2) == 1) {
    const double begin = uniform(0.05 * d, 0.7 * d);
    plan.san_slowdowns.push_back(
        {begin, begin + uniform(0.05 * d, 0.25 * d), uniform(1.5, 4.0)});
  }

  if (config.max_flaky_windows > 0 && rng.next_below(2) == 1) {
    const double begin = uniform(0.0, 0.5 * d);
    plan.flaky_moves.push_back(
        {begin, begin + uniform(0.2 * d, 0.5 * d), uniform(0.2, 0.8),
         1 + static_cast<std::uint32_t>(rng.next_below(4)), uniform(0.5, 3.0)});
  }

  ANUFS_ENSURES(
      validate(plan, config.n_servers, config.min_alive).empty());
  return plan;
}

}  // namespace anufs::fault
