// Replays a FaultPlan against a ClusterSim.
//
// Every fault is installed as an ordinary scheduler event BEFORE the
// run starts, so injected faults interleave with workload arrivals,
// reconfigurations, and movement completions under the scheduler's
// (time, insertion-sequence) total order. That makes a faulted run
// exactly as deterministic as a fault-free one: same seed, same plan,
// same results — bit-identical at any --jobs count.
//
// Installation order is canonical (each event group sorted by time,
// membership recover/add before crash at equal instants, window begins
// interleaved with ends by start time), so two textual plans with the
// same semantics replay identically.
#pragma once

#include "cluster/cluster_sim.h"
#include "fault/fault_plan.h"

namespace anufs::fault {

/// Schedule every event of `plan` on `sim`'s scheduler. Call after
/// construction and before ClusterSim::run(). The plan is copied into
/// the scheduled closures; `sim` must outlive the run (it does — the
/// scheduler is owned by it). Aborts if the plan fails validate()
/// against the simulation's initial server count.
void install_fault_plan(cluster::ClusterSim& sim,
                        std::uint32_t n_initial_servers,
                        const FaultPlan& plan);

}  // namespace anufs::fault
