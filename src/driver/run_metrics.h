// Bridges one run's ad-hoc counters — Scheduler::Stats, RunResult,
// PlacementCache::Stats, the trace sink's own bookkeeping — into a
// single obs::Registry snapshot, so every exported metrics file has one
// uniform shape regardless of which subsystems were active.
#pragma once

#include "driver/scenario.h"
#include "obs/metrics_registry.h"

namespace anufs::driver {

/// Build the registry for a finished run. `policy` may be any placement
/// policy (ANU cache stats are included when it is one); `sink` may be
/// null (trace_* counters are omitted).
[[nodiscard]] obs::Registry collect_run_metrics(
    const ScenarioConfig& config, const cluster::RunResult& result,
    const policy::PlacementPolicy* policy, const obs::TraceSink* sink);

}  // namespace anufs::driver
