// Parallel experiment runner: executes independent (policy, seed,
// scenario) simulations concurrently on a sim::ThreadPool.
//
// Isolation rule: every run constructs its OWN workload, policy,
// Scheduler, RNG streams, and ClusterSim (see run_scenario_quiet), so
// no state is shared between concurrent runs and a parallel sweep is
// bit-identical to the same sweep executed serially with jobs=1.
// Results are returned in input order regardless of completion order.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "driver/scenario.h"

namespace anufs::driver {

/// Expand a sweep config into one concrete per-seed scenario. For a
/// non-sweep config, returns the config itself as a single run. Each
/// expanded config has jobs/sweep cleared (it IS one run) and both the
/// workload seed and the cluster seed set to the sweep seed.
[[nodiscard]] std::vector<ScenarioConfig> expand_sweep(
    const ScenarioConfig& config);

/// Run every config, up to `jobs` at a time. results[i] corresponds to
/// configs[i]. jobs <= 1 is the serial reference execution.
[[nodiscard]] std::vector<cluster::RunResult> run_parallel(
    const std::vector<ScenarioConfig>& configs, std::size_t jobs);

/// Sweep driver behind `anufs_sim`: expands `config`, runs the seeds on
/// `config.jobs` workers, prints a per-seed table plus mean +/- stddev
/// aggregates and engine throughput to `os`. Returns the per-seed
/// results in seed order.
std::vector<cluster::RunResult> run_sweep(const ScenarioConfig& config,
                                          std::ostream& os);

}  // namespace anufs::driver
