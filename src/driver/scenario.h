// Scenario driver: run any experiment from a declarative text config,
// no C++ required. This is the operator-facing surface of the
// simulator; `tools/anufs_sim` is the CLI wrapper.
//
// Config format (line-oriented; '#' comments):
//
//   workload synthetic | dfstrace | opmix | trace <path>
//   policy <name>              # any registered policy
//                              # (src/policies/registry.h): anu,
//                              #   anu-pairwise, prescient, round-robin,
//                              #   simple-random, weighted-hash,
//                              #   consistent-hash, pow-d, jiq; an
//                              #   unknown name fails at parse time
//                              #   listing the registered ones
//   pow_d 2                    # pow-d/jiq probe width d (>= 1; values
//                              #   above the cluster size clamp with a
//                              #   warning)
//   servers 1,3,5,7,9          # speeds; ids are 0..n-1
//   period 120                 # reconfiguration seconds
//   duration 10000             # overrides workload default
//   requests 100000            # expected request count
//   file_sets 500
//   seed 42
//   san on|off
//   detector on|off
//   routing_delay 10           # seconds; 0 = off
//   report_loss 0.1            # per-round report loss probability
//   movement on|off
//   threshold 0.5|auto         # ANU tuner knobs
//   max_scale 2.0
//   average mean|median
//   fail <time> <server>       # membership script
//   recover <time> <server>
//   add <time> <server> <speed>
//   faults <path>              # load a fault plan file (src/fault)
//   fault <directive...>       # one inline fault-plan directive, e.g.
//                              #   fault limp 400 600 3 0.25
//   emit series|summary        # output form (default summary)
//   trace <path>               # structured trace -> <path> (JSONL),
//                              #   <path>.chrome.json (chrome://tracing)
//                              #   and <path>.metrics.json (registry
//                              #   snapshot); see src/obs
//   trace_categories a,b       # subset of delegate,tuner,move,cache,
//                              #   fault,sched (default all)
//   jobs 4                     # worker threads for sweeps (default 1)
//   sweep seed=1..10           # run once per seed in 1..10 (inclusive)
//   serve_threads 8            # 0 = off; else append a real-time
//                              #   serving phase (src/serve) after the
//                              #   simulated run: N reader threads of
//                              #   concurrent cached lookups under
//                              #   epoch-snapshot control-plane churn,
//                              #   equivalence-checked against a
//                              #   sequential replay
//   serve_seconds 2            # serving window (wall-clock seconds)
//
// The `fail`/`recover`/`add` membership script and the fault plan both
// inject membership churn; they compose, but a server they both touch
// must follow the usual alive/crashed alternation or the run aborts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/cluster_sim.h"
#include "fault/fault_plan.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace anufs::driver {

struct MembershipEvent {
  enum class Kind { kFail, kRecover, kAdd } kind = Kind::kFail;
  double time = 0.0;
  std::uint32_t server = 0;
  double speed = 1.0;  // kAdd only
};

struct ScenarioConfig {
  std::string workload = "synthetic";
  std::string trace_path_workload;  // workload == "trace": replay input
  std::string policy = "anu";
  cluster::ClusterConfig cluster;
  // Workload shape overrides (0 = keep the workload's default).
  double duration = 0.0;
  std::uint64_t requests = 0;
  std::uint32_t file_sets = 0;
  std::uint64_t seed = 0;
  /// pow-d / jiq probe width (scenario key `pow_d`); 0 keeps the policy
  /// default. Validated >= 1 and clamped to the cluster size at parse
  /// time; clamped to the alive count at every decision.
  std::uint32_t pow_d = 0;
  // ANU knobs.
  double threshold = -1.0;   // <0 = default
  bool auto_threshold = false;
  double max_scale = -1.0;
  bool median_average = false;
  bool pairwise = false;
  std::vector<MembershipEvent> events;
  /// Deterministic fault-injection schedule (crashes, limping servers,
  /// SAN degradation, flaky moves); replayed through the scheduler by
  /// fault::install_fault_plan before the run starts.
  fault::FaultPlan faults;
  bool emit_series = false;
  /// Observability surface (src/obs). Empty trace_path = tracing off:
  /// every ANUFS_TRACE site reduces to a thread-local null check and
  /// the run is bit-identical to an untraced one (enforced by
  /// tests/trace_property_test.cpp). Non-empty: a per-run TraceSink is
  /// installed for the run's thread and exported afterwards to
  /// trace_path (JSONL), trace_path + ".chrome.json" (Chrome
  /// trace_event), and trace_path + ".metrics.json" (metrics registry
  /// snapshot). Sweeps expand to one trace file set per seed
  /// (trace_path + ".seed<N>").
  std::string trace_path;
  std::uint32_t trace_categories = obs::kAllCategories;
  // Parallel sweep surface (see driver/parallel_runner.h). jobs is the
  // worker-thread count; a sweep runs the scenario once per seed in
  // [sweep_begin, sweep_end]. sweep_end == 0 means "no sweep".
  std::size_t jobs = 1;
  std::uint64_t sweep_begin = 0;
  std::uint64_t sweep_end = 0;
  [[nodiscard]] bool is_sweep() const noexcept { return sweep_end != 0; }
  /// Serving phase (src/serve): serve_threads > 0 appends a REAL-TIME
  /// concurrent serving run after the simulated one — serve_threads
  /// reader threads issue cached locates against a live AnuSystem while
  /// a writer churns the control plane through epoch snapshots. The
  /// scenario's seed, file_sets, fault plan, and ANU knobs shape it;
  /// its serve_* metrics join the exported registry, and the phase
  /// aborts the scenario if the sequential-replay equivalence check
  /// finds a divergent answer.
  std::uint32_t serve_threads = 0;
  double serve_seconds = 1.0;
};

/// Parse a scenario; aborts with a <source>:<line>: <token> diagnostic
/// on malformed input (never an uncaught std::invalid_argument).
/// `source_name` names the input in diagnostics (the file path, or
/// "<stdin>"/"<inline>").
[[nodiscard]] ScenarioConfig parse_scenario(
    std::istream& is, const std::string& source_name = "<scenario>");

/// Parse from a string (tests, inline configs).
[[nodiscard]] ScenarioConfig parse_scenario_text(const std::string& text);

/// Build everything and run; prints results to `os`. Returns the run
/// result for programmatic use.
cluster::RunResult run_scenario(const ScenarioConfig& config,
                                std::ostream& os);

/// Build everything and run without printing. This is the thread-safe
/// entry point the parallel runner uses: every call constructs its own
/// workload, policy, scheduler, and ClusterSim, so concurrent calls on
/// distinct configs never share state.
[[nodiscard]] cluster::RunResult run_scenario_quiet(
    const ScenarioConfig& config);

/// Where one run's wall/CPU time went, phase by phase (reported by the
/// sweep summary; see driver/parallel_runner.h).
struct RunProfile {
  obs::PhaseCost setup;  ///< workload + policy + simulator construction
  obs::PhaseCost run;    ///< the event loop itself
};

/// run_scenario_quiet with per-phase profiling into `profile`.
[[nodiscard]] cluster::RunResult run_scenario_profiled(
    const ScenarioConfig& config, RunProfile& profile);

}  // namespace anufs::driver
