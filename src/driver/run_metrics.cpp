#include "driver/run_metrics.h"

#include "policies/anu_policy.h"

namespace anufs::driver {

obs::Registry collect_run_metrics(const ScenarioConfig& config,
                                  const cluster::RunResult& result,
                                  const policy::PlacementPolicy* policy,
                                  const obs::TraceSink* sink) {
  obs::Registry reg;

  // Request-path outcomes (the conservation ledger).
  reg.counter("requests.total").set(result.total_requests);
  reg.counter("requests.completed").set(result.completed);
  reg.counter("requests.lost").set(result.lost);
  reg.counter("requests.forwarded").set(result.forwarded);
  reg.counter("requests.queued_at_end").set(result.queued_at_end);
  reg.counter("requests.held_at_end").set(result.held_at_end);
  reg.counter("requests.in_transit_at_end").set(result.in_transit_at_end);

  // File-set movement and membership.
  reg.counter("moves.total").set(result.moves);
  reg.counter("moves.crash_induced").set(result.crash_moves);
  reg.counter("moves.failed_attempts").set(result.move_failures);
  reg.counter("membership.fenced").set(result.fenced);
  reg.counter("membership.recovery_episodes").set(result.recoveries.size());
  reg.counter("net.reports_lost").set(result.reports_lost);

  // Event-engine throughput counters.
  reg.counter("engine.fired").set(result.engine.fired);
  reg.counter("engine.cancelled").set(result.engine.cancelled);
  reg.counter("engine.compactions").set(result.engine.compactions);
  reg.counter("engine.peak_pending").set(result.engine.peak_pending);
  reg.counter("engine.pool_allocated").set(result.engine.pool_allocated);
  reg.counter("engine.pool_recycled").set(result.engine.pool_recycled);

  reg.gauge("latency.run_mean_ms").set(result.mean_latency * 1e3);
  if (config.cluster.san.enabled) {
    reg.gauge("san.busy_s").set(result.san_busy);
    reg.gauge("san.wasted_idle_s").set(result.san_wasted_idle);
    reg.gauge("san.mean_end_to_end_ms").set(result.san_mean_end_to_end * 1e3);
  }

  // Per-interval per-server latency samples, pooled into one log-scale
  // histogram (milliseconds; base bucket 1 ms).
  obs::Histogram& lat = reg.histogram("latency.interval_ms", 1.0, 24);
  for (const std::string& label : result.latency_ms.labels()) {
    for (const auto& [time, value] : result.latency_ms.at(label).points()) {
      (void)time;
      lat.record(value);
    }
  }

  // ANU placement-cache effectiveness, when the policy carries one.
  if (const auto* anu = dynamic_cast<const policy::AnuPolicy*>(policy)) {
    const core::PlacementCache::Stats cs = anu->system().cache_stats();
    reg.counter("placement_cache.hits").set(cs.hits);
    reg.counter("placement_cache.misses").set(cs.misses);
    reg.counter("placement_cache.invalidations").set(cs.invalidations);
    reg.gauge("placement_cache.hit_rate").set(cs.hit_rate());
  }

  // The trace's own health: how much the ring kept vs overwrote.
  if (sink != nullptr) {
    reg.counter("trace.recorded").set(sink->recorded());
    reg.counter("trace.dropped").set(sink->dropped());
  }
  return reg;
}

}  // namespace anufs::driver
