#include "driver/run_metrics.h"

#include "policies/anu_policy.h"

namespace anufs::driver {

obs::Registry collect_run_metrics(const ScenarioConfig& config,
                                  const cluster::RunResult& result,
                                  const policy::PlacementPolicy* policy,
                                  const obs::TraceSink* sink) {
  obs::Registry reg;

  // Request-path outcomes (the conservation ledger).
  reg.counter("requests.total").set(result.total_requests);
  reg.counter("requests.completed").set(result.completed);
  reg.counter("requests.lost").set(result.lost);
  reg.counter("requests.forwarded").set(result.forwarded);
  reg.counter("requests.queued_at_end").set(result.queued_at_end);
  reg.counter("requests.held_at_end").set(result.held_at_end);
  reg.counter("requests.in_transit_at_end").set(result.in_transit_at_end);

  // File-set movement and membership.
  reg.counter("moves.total").set(result.moves);
  reg.counter("moves.crash_induced").set(result.crash_moves);
  reg.counter("moves.failed_attempts").set(result.move_failures);
  reg.counter("membership.fenced").set(result.fenced);
  reg.counter("membership.recovery_episodes").set(result.recoveries.size());
  reg.counter("net.reports_lost").set(result.reports_lost);

  // Event-engine throughput counters.
  reg.counter("engine.fired").set(result.engine.fired);
  reg.counter("engine.cancelled").set(result.engine.cancelled);
  reg.counter("engine.compactions").set(result.engine.compactions);
  reg.counter("engine.peak_pending").set(result.engine.peak_pending);
  reg.counter("engine.pool_allocated").set(result.engine.pool_allocated);
  reg.counter("engine.pool_recycled").set(result.engine.pool_recycled);

  reg.gauge("latency.run_mean_ms").set(result.mean_latency * 1e3);
  if (config.cluster.san.enabled) {
    reg.gauge("san.busy_s").set(result.san_busy);
    reg.gauge("san.wasted_idle_s").set(result.san_wasted_idle);
    reg.gauge("san.mean_end_to_end_ms").set(result.san_mean_end_to_end * 1e3);
  }

  // Per-interval per-server latency samples, pooled into one log-scale
  // histogram (milliseconds; base bucket 1 ms).
  obs::Histogram& lat = reg.histogram("latency.interval_ms", 1.0, 24);
  for (const std::string& label : result.latency_ms.labels()) {
    for (const auto& [time, value] : result.latency_ms.at(label).points()) {
      (void)time;
      lat.record(value);
    }
  }

  // ANU placement-cache effectiveness, when the policy carries one.
  if (const auto* anu = dynamic_cast<const policy::AnuPolicy*>(policy)) {
    const core::PlacementCache::Stats cs = anu->system().cache_stats();
    reg.counter("placement_cache.hits").set(cs.hits);
    reg.counter("placement_cache.misses").set(cs.misses);
    reg.counter("placement_cache.invalidations").set(cs.invalidations);
    reg.counter("placement_cache.revalidated").set(cs.revalidated);
    reg.gauge("placement_cache.hit_rate").set(cs.hit_rate());

    // Control-plane cost: how many servers each reconfiguration or
    // membership event actually reshaped (the O(changed) ledger).
    const core::ControlPlaneStats& cp =
        anu->system().control_plane_stats();
    reg.counter("control.rounds").set(cp.rounds);
    reg.counter("control.rounds_acted").set(cp.rounds_acted);
    reg.counter("control.membership_events").set(cp.membership_events);
    reg.counter("control.touched_total").set(cp.touched_total);
    reg.counter("control.max_touched").set(cp.max_touched);
    // Re-expand the log2 buckets into a mergeable registry histogram
    // (base bucket: 1 server). Bucket i's events touched counts in
    // [2^(i-1), 2^i); the lower bound is an exact representative.
    obs::Histogram& touched = reg.histogram("control.touched_servers", 1.0, 20);
    for (std::size_t i = 0; i < cp.touched_log2.size(); ++i) {
      const double rep =
          i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
      for (std::uint64_t k = 0; k < cp.touched_log2[i]; ++k) {
        touched.record(rep);
      }
    }
  }

  // The trace's own health: how much the ring kept vs overwrote. The
  // caller must harvest AFTER its final events() snapshot so these
  // counts agree with what was actually exported (driver/scenario.cpp
  // drains first; tests/run_metrics_test.cpp pins the ordering with a
  // 1-slot ring).
  if (sink != nullptr) {
    reg.counter("trace.recorded").set(sink->recorded());
    reg.counter("trace.retained").set(sink->recorded() - sink->dropped());
    reg.counter("trace.dropped").set(sink->dropped());
  }
  return reg;
}

}  // namespace anufs::driver
