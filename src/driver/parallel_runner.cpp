#include "driver/parallel_runner.h"

#include <algorithm>
#include <ostream>
#include <string>

#include "common/check.h"
#include "metrics/emit.h"
#include "metrics/summary.h"
#include "sim/thread_pool.h"

namespace anufs::driver {

namespace {

double worst_tail_ms(const cluster::RunResult& r) {
  double worst = 0.0;
  for (const std::string& label : r.latency_ms.labels()) {
    worst = std::max(worst, r.latency_ms.at(label).tail_mean(0.5));
  }
  return worst;
}

}  // namespace

std::vector<ScenarioConfig> expand_sweep(const ScenarioConfig& config) {
  std::vector<ScenarioConfig> runs;
  if (!config.is_sweep()) {
    runs.push_back(config);
    runs.back().jobs = 1;
    return runs;
  }
  ANUFS_EXPECTS(config.sweep_begin >= 1 &&
                config.sweep_begin <= config.sweep_end);
  runs.reserve(config.sweep_end - config.sweep_begin + 1);
  for (std::uint64_t seed = config.sweep_begin; seed <= config.sweep_end;
       ++seed) {
    ScenarioConfig run = config;
    run.jobs = 1;
    run.sweep_begin = run.sweep_end = 0;
    run.seed = seed;
    run.cluster.seed = seed;
    if (!run.trace_path.empty()) {
      // One trace file set per seed: concurrent workers must never
      // write the same path.
      run.trace_path += ".seed" + std::to_string(seed);
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

std::vector<cluster::RunResult> run_parallel(
    const std::vector<ScenarioConfig>& configs, std::size_t jobs) {
  std::vector<cluster::RunResult> results(configs.size());
  // Each index writes only its own slot; run_scenario_quiet shares
  // nothing between calls, so any interleaving yields the same results.
  sim::parallel_for(configs.size(), jobs, [&](std::size_t i) {
    results[i] = run_scenario_quiet(configs[i]);
  });
  return results;
}

std::vector<cluster::RunResult> run_sweep(const ScenarioConfig& config,
                                          std::ostream& os) {
  const std::vector<ScenarioConfig> runs = expand_sweep(config);
  // Like run_parallel, but each seed also records where its time went
  // (setup vs event loop); phase clocks run on the worker thread, so
  // CPU time is the run's own, not the pool's. All wall-clock reads go
  // through obs::PhaseTimer — the one sanctioned timing primitive
  // (D1: raw clock reads are confined to obs/profile and sim/random).
  std::vector<cluster::RunResult> results(runs.size());
  std::vector<RunProfile> profiles(runs.size());
  obs::PhaseCost total;
  {
    obs::PhaseTimer total_timer(total);
    sim::parallel_for(runs.size(), config.jobs, [&](std::size_t i) {
      results[i] = run_scenario_profiled(runs[i], profiles[i]);
    });
  }
  const double wall = total.wall;

  obs::PhaseCost aggregate;
  obs::PhaseTimer aggregate_timer(aggregate);
  os << "# sweep: workload=" << config.workload
     << " policy=" << config.policy << " seeds=[" << config.sweep_begin
     << ".." << config.sweep_end << "] jobs=" << config.jobs << "\n";
  metrics::TableEmitter table(
      os, {"seed", "run_mean_ms", "worst_tail_ms", "completed", "moves"});
  table.header("per-seed results");
  std::vector<double> means_ms, tails_ms;
  std::uint64_t events = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const cluster::RunResult& r = results[i];
    const double mean_ms = r.mean_latency * 1e3;
    const double tail_ms = worst_tail_ms(r);
    means_ms.push_back(mean_ms);
    tails_ms.push_back(tail_ms);
    events += r.engine.fired;
    table.row({std::to_string(runs[i].seed),
               metrics::TableEmitter::num(mean_ms, 3),
               metrics::TableEmitter::num(tail_ms, 3),
               std::to_string(r.completed), std::to_string(r.moves)});
  }
  const metrics::Summary mean_summary = metrics::summarize(means_ms);
  const metrics::Summary tail_summary = metrics::summarize(tails_ms);
  os << "run_mean_ms " << metrics::TableEmitter::num(mean_summary.mean, 3)
     << " +/- " << metrics::TableEmitter::num(mean_summary.stddev, 3)
     << " over " << results.size() << " seeds\n";
  os << "worst_tail_ms " << metrics::TableEmitter::num(tail_summary.mean, 3)
     << " +/- " << metrics::TableEmitter::num(tail_summary.stddev, 3)
     << "\n";
  os << "engine " << events << " events in "
     << metrics::TableEmitter::num(wall, 2) << " s wall ("
     << metrics::TableEmitter::num(wall > 0 ? static_cast<double>(events) /
                                                  wall / 1e6
                                            : 0.0,
                                   2)
     << " M events/s)\n";
  aggregate_timer.stop();
  obs::PhaseCost setup, run;
  for (const RunProfile& p : profiles) {
    setup += p.setup;
    run += p.run;
  }
  const auto phase = [&](const char* name, const obs::PhaseCost& c) {
    os << "profile " << name << " "
       << metrics::TableEmitter::num(c.wall, 3) << " s wall / "
       << metrics::TableEmitter::num(c.cpu, 3) << " s cpu\n";
  };
  phase("setup", setup);
  phase("run", run);
  phase("aggregate", aggregate);
  return results;
}

}  // namespace anufs::driver
