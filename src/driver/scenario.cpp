#include "driver/scenario.h"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "fault/fault_injector.h"
#include "metrics/emit.h"
#include "policies/anu_policy.h"
#include "policies/consistent_hash.h"
#include "policies/prescient.h"
#include "policies/round_robin.h"
#include "policies/simple_random.h"
#include "policies/weighted_hash.h"
#include "workload/dfstrace_like.h"
#include "workload/op_workload.h"
#include "workload/synthetic.h"
#include "workload/trace_io.h"

namespace anufs::driver {

namespace {

[[noreturn]] void config_failure(std::size_t line_no, const std::string& what) {
  std::fprintf(stderr, "anufs-scenario: line %zu: %s\n", line_no,
               what.c_str());
  std::abort();
}

std::vector<double> parse_speeds(const std::string& csv, std::size_t line_no) {
  std::vector<double> speeds;
  std::string token;
  for (const char c : csv + ",") {
    if (c == ',') {
      if (token.empty()) config_failure(line_no, "empty speed entry");
      speeds.push_back(std::stod(token));
      token.clear();
    } else {
      token += c;
    }
  }
  if (speeds.empty()) config_failure(line_no, "no speeds given");
  return speeds;
}

bool parse_on_off(const std::string& v, std::size_t line_no) {
  if (v == "on") return true;
  if (v == "off") return false;
  config_failure(line_no, "expected on|off, got '" + v + "'");
}

// "seed=A..B" (inclusive, A <= B, A >= 1).
void parse_sweep(const std::string& spec, ScenarioConfig& config,
                 std::size_t line_no) {
  const auto eq = spec.find('=');
  const auto dots = spec.find("..");
  if (eq == std::string::npos || dots == std::string::npos || dots < eq ||
      spec.substr(0, eq) != "seed") {
    config_failure(line_no, "expected sweep seed=A..B, got '" + spec + "'");
  }
  const std::string lo = spec.substr(eq + 1, dots - eq - 1);
  const std::string hi = spec.substr(dots + 2);
  if (lo.empty() || hi.empty()) {
    config_failure(line_no, "expected sweep seed=A..B, got '" + spec + "'");
  }
  config.sweep_begin = std::stoull(lo);
  config.sweep_end = std::stoull(hi);
  if (config.sweep_begin == 0 || config.sweep_end < config.sweep_begin) {
    config_failure(line_no, "sweep range must satisfy 1 <= A <= B");
  }
}

workload::Workload build_workload(const ScenarioConfig& c) {
  if (c.workload == "synthetic") {
    workload::SyntheticConfig wc;
    if (c.duration > 0) wc.duration = c.duration;
    if (c.requests > 0) wc.total_requests = c.requests;
    if (c.file_sets > 0) wc.file_sets = c.file_sets;
    if (c.seed > 0) wc.seed = c.seed;
    return workload::make_synthetic(wc);
  }
  if (c.workload == "dfstrace") {
    workload::DfsTraceLikeConfig wc;
    if (c.duration > 0) wc.duration = c.duration;
    if (c.requests > 0) wc.total_requests = c.requests;
    if (c.file_sets > 0) wc.file_sets = c.file_sets;
    if (c.seed > 0) wc.seed = c.seed;
    return workload::make_dfstrace_like(wc);
  }
  if (c.workload == "opmix") {
    workload::OpWorkloadConfig wc;
    if (c.duration > 0) wc.duration = c.duration;
    if (c.requests > 0) wc.total_ops = c.requests;
    if (c.file_sets > 0) wc.file_sets = c.file_sets;
    if (c.seed > 0) wc.seed = c.seed;
    return workload::make_op_workload(wc).workload;
  }
  if (c.workload == "trace") {
    return workload::load_trace(c.trace_path);
  }
  std::fprintf(stderr, "anufs-scenario: unknown workload '%s'\n",
               c.workload.c_str());
  std::abort();
}

std::unique_ptr<policy::PlacementPolicy> build_policy(
    const ScenarioConfig& c, const workload::Workload& work) {
  core::AnuConfig anu_config;
  if (c.auto_threshold) anu_config.tuner.auto_threshold = true;
  if (c.threshold >= 0) anu_config.tuner.threshold = c.threshold;
  if (c.max_scale > 0) anu_config.tuner.max_scale = c.max_scale;
  if (c.median_average) {
    anu_config.tuner.average = core::AverageKind::kMedian;
  }
  if (c.pairwise || c.policy == "anu-pairwise") {
    anu_config.mode = core::TunerMode::kDecentralizedPairwise;
  }
  if (c.policy == "anu" || c.policy == "anu-pairwise") {
    return std::make_unique<policy::AnuPolicy>(anu_config);
  }
  if (c.policy == "round-robin") {
    return std::make_unique<policy::RoundRobinPolicy>();
  }
  if (c.policy == "simple-random") {
    return std::make_unique<policy::SimpleRandomPolicy>(
        c.seed > 0 ? c.seed : 1);
  }
  std::map<ServerId, double> caps;
  for (std::uint32_t i = 0; i < c.cluster.server_speeds.size(); ++i) {
    caps[ServerId{i}] = c.cluster.server_speeds[i];
  }
  for (const MembershipEvent& e : c.events) {
    if (e.kind == MembershipEvent::Kind::kAdd) {
      caps[ServerId{e.server}] = e.speed;
    }
  }
  // Fault-plan additions commission servers too: capacity-aware
  // policies need their speeds known up front.
  for (const fault::AddEvent& e : c.faults.additions) {
    caps[ServerId{e.server}] = e.speed;
  }
  if (c.policy == "prescient") {
    policy::PrescientConfig pc;
    pc.speeds = caps;
    pc.period = c.cluster.reconfig_period;
    return std::make_unique<policy::PrescientPolicy>(pc, work);
  }
  if (c.policy == "weighted-hash") {
    return std::make_unique<policy::WeightedHashPolicy>(caps);
  }
  if (c.policy == "consistent-hash") {
    return std::make_unique<policy::ConsistentHashPolicy>(caps);
  }
  std::fprintf(stderr, "anufs-scenario: unknown policy '%s'\n",
               c.policy.c_str());
  std::abort();
}

}  // namespace

ScenarioConfig parse_scenario(std::istream& is) {
  ScenarioConfig config;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (const auto hash_pos = line.find('#'); hash_pos != std::string::npos) {
      line.resize(hash_pos);
    }
    std::istringstream ss(line);
    std::string key;
    if (!(ss >> key)) continue;
    std::string value;
    const auto want = [&](const char* what) -> std::string& {
      if (!(ss >> value)) config_failure(line_no, std::string("missing ") + what);
      return value;
    };
    if (key == "workload") {
      config.workload = want("workload kind");
      if (config.workload == "trace") {
        config.trace_path = want("trace path");
      }
    } else if (key == "policy") {
      config.policy = want("policy name");
    } else if (key == "servers") {
      config.cluster.server_speeds = parse_speeds(want("speeds"), line_no);
    } else if (key == "period") {
      config.cluster.reconfig_period = std::stod(want("seconds"));
    } else if (key == "duration") {
      config.duration = std::stod(want("seconds"));
    } else if (key == "requests") {
      config.requests = std::stoull(want("count"));
    } else if (key == "file_sets") {
      config.file_sets = static_cast<std::uint32_t>(
          std::stoul(want("count")));
    } else if (key == "seed") {
      config.seed = std::stoull(want("seed"));
      config.cluster.seed = config.seed;
    } else if (key == "san") {
      config.cluster.san.enabled = parse_on_off(want("on|off"), line_no);
    } else if (key == "detector") {
      config.cluster.detector.enabled =
          parse_on_off(want("on|off"), line_no);
    } else if (key == "report_loss") {
      config.cluster.net.report_loss = std::stod(want("probability"));
    } else if (key == "routing_delay") {
      const double d = std::stod(want("seconds"));
      config.cluster.routing.model_staleness = d > 0;
      config.cluster.routing.distribution_delay = d;
    } else if (key == "movement") {
      config.cluster.movement.enabled =
          parse_on_off(want("on|off"), line_no);
    } else if (key == "threshold") {
      const std::string v = want("value");
      if (v == "auto") {
        config.auto_threshold = true;
      } else {
        config.threshold = std::stod(v);
      }
    } else if (key == "max_scale") {
      config.max_scale = std::stod(want("value"));
    } else if (key == "average") {
      const std::string v = want("mean|median");
      if (v == "median") {
        config.median_average = true;
      } else if (v != "mean") {
        config_failure(line_no, "expected mean|median");
      }
    } else if (key == "fail" || key == "recover") {
      MembershipEvent e;
      e.kind = key == "fail" ? MembershipEvent::Kind::kFail
                             : MembershipEvent::Kind::kRecover;
      e.time = std::stod(want("time"));
      e.server = static_cast<std::uint32_t>(std::stoul(want("server")));
      config.events.push_back(e);
    } else if (key == "add") {
      MembershipEvent e;
      e.kind = MembershipEvent::Kind::kAdd;
      e.time = std::stod(want("time"));
      e.server = static_cast<std::uint32_t>(std::stoul(want("server")));
      e.speed = std::stod(want("speed"));
      config.events.push_back(e);
    } else if (key == "faults") {
      const fault::FaultPlan loaded = fault::load_fault_plan(want("path"));
      // Merge so `faults` and inline `fault` lines compose.
      config.faults.crashes.insert(config.faults.crashes.end(),
                                   loaded.crashes.begin(),
                                   loaded.crashes.end());
      config.faults.recoveries.insert(config.faults.recoveries.end(),
                                      loaded.recoveries.begin(),
                                      loaded.recoveries.end());
      config.faults.additions.insert(config.faults.additions.end(),
                                     loaded.additions.begin(),
                                     loaded.additions.end());
      config.faults.limps.insert(config.faults.limps.end(),
                                 loaded.limps.begin(), loaded.limps.end());
      config.faults.san_slowdowns.insert(config.faults.san_slowdowns.end(),
                                         loaded.san_slowdowns.begin(),
                                         loaded.san_slowdowns.end());
      config.faults.flaky_moves.insert(config.faults.flaky_moves.end(),
                                       loaded.flaky_moves.begin(),
                                       loaded.flaky_moves.end());
    } else if (key == "fault") {
      std::string directive;
      std::getline(ss, directive);
      if (directive.find_first_not_of(" \t") == std::string::npos) {
        config_failure(line_no, "missing fault directive");
      }
      fault::parse_fault_directive(directive, config.faults);
    } else if (key == "emit") {
      const std::string v = want("series|summary");
      if (v == "series") {
        config.emit_series = true;
      } else if (v != "summary") {
        config_failure(line_no, "expected series|summary");
      }
    } else if (key == "jobs") {
      config.jobs = static_cast<std::size_t>(std::stoul(want("count")));
      if (config.jobs == 0) config_failure(line_no, "jobs must be >= 1");
    } else if (key == "sweep") {
      parse_sweep(want("seed=A..B"), config, line_no);
    } else {
      config_failure(line_no, "unknown key '" + key + "'");
    }
  }
  return config;
}

ScenarioConfig parse_scenario_text(const std::string& text) {
  std::istringstream is(text);
  return parse_scenario(is);
}

namespace {

cluster::RunResult run_built(const ScenarioConfig& config,
                             std::string* policy_name) {
  const workload::Workload work = build_workload(config);
  const std::unique_ptr<policy::PlacementPolicy> pol =
      build_policy(config, work);
  if (policy_name != nullptr) *policy_name = pol->name();
  cluster::ClusterSim sim(config.cluster, work, *pol);
  for (const MembershipEvent& e : config.events) {
    switch (e.kind) {
      case MembershipEvent::Kind::kFail:
        sim.schedule_failure(e.time, ServerId{e.server});
        break;
      case MembershipEvent::Kind::kRecover:
        sim.schedule_recovery(e.time, ServerId{e.server});
        break;
      case MembershipEvent::Kind::kAdd:
        sim.schedule_addition(e.time, ServerId{e.server}, e.speed);
        break;
    }
  }
  if (!config.faults.empty()) {
    fault::install_fault_plan(
        sim,
        static_cast<std::uint32_t>(config.cluster.server_speeds.size()),
        config.faults);
  }
  return sim.run();
}

}  // namespace

cluster::RunResult run_scenario_quiet(const ScenarioConfig& config) {
  return run_built(config, nullptr);
}

cluster::RunResult run_scenario(const ScenarioConfig& config,
                                std::ostream& os) {
  std::string policy_name;
  cluster::RunResult result = run_built(config, &policy_name);

  os << "# scenario: workload=" << config.workload
     << " policy=" << policy_name << " servers="
     << config.cluster.server_speeds.size() << "\n";
  if (config.emit_series) {
    metrics::emit_bundle(os, policy_name + " per-server mean latency (ms)",
                         result.latency_ms);
  }
  os << "requests " << result.completed << "/" << result.total_requests
     << " completed, " << result.lost << " lost\n";
  os << "moves " << result.moves << ", forwarded " << result.forwarded
     << "\n";
  if (!config.faults.empty()) {
    os << "faults " << config.faults.event_count() << " events, crash-moves "
       << result.crash_moves << ", move-failures " << result.move_failures
       << ", unresolved " << result.queued_at_end << "+"
       << result.held_at_end << "+" << result.in_transit_at_end
       << " (queued+held+in-transit)\n";
    for (const cluster::RecoveryEpisode& r : result.recoveries) {
      os << "  recovery at " << r.declared_at << " s: " << r.moves
         << " sets re-homed in " << metrics::TableEmitter::num(r.span())
         << " s\n";
    }
  }
  os << "run-mean latency " << result.mean_latency * 1e3 << " ms\n";
  for (const std::string& label : result.latency_ms.labels()) {
    os << "  " << label << " steady-state mean "
       << metrics::TableEmitter::num(
              result.latency_ms.at(label).tail_mean(1.0 / 3.0))
       << " ms\n";
  }
  if (config.cluster.san.enabled) {
    os << "san busy " << result.san_busy << " s, wasted-idle "
       << result.san_wasted_idle << " s, end-to-end "
       << result.san_mean_end_to_end * 1e3 << " ms\n";
  }
  return result;
}

}  // namespace anufs::driver
