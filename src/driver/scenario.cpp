#include "driver/scenario.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "driver/run_metrics.h"
#include "fault/fault_injector.h"
#include "metrics/emit.h"
#include "obs/export.h"
#include "policies/registry.h"
#include "serve/lookup_service.h"
#include "workload/dfstrace_like.h"
#include "workload/op_workload.h"
#include "workload/synthetic.h"
#include "workload/trace_io.h"

namespace anufs::driver {

namespace {

/// Where a diagnostic points: the input's name plus the 1-based line.
struct LineCtx {
  const std::string& source;
  std::size_t line;
};

[[noreturn]] void config_failure(const LineCtx& ctx, const std::string& what) {
  std::fprintf(stderr, "anufs-scenario: %s:%zu: %s\n", ctx.source.c_str(),
               ctx.line, what.c_str());
  std::abort();
}

// ---- numeric token parsing -----------------------------------------------
// std::stod/std::stoul would throw std::invalid_argument on garbage (an
// uncaught abort with no context) and silently accept trailing junk
// ("1.5x" -> 1.5). These helpers consume the WHOLE token or die with a
// diagnostic naming source:line and the offending token.

double parse_double(const std::string& token, const LineCtx& ctx,
                    const char* what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty() ||
      errno == ERANGE || !std::isfinite(v)) {
    config_failure(ctx, std::string("bad ") + what + " '" + token +
                            "' (expected a finite number)");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& token, const LineCtx& ctx,
                        const char* what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  // strtoull quietly wraps negatives ("-1" -> huge); require a digit
  // first so the rejection is explicit.
  if (token.empty() || (token[0] < '0' || token[0] > '9') ||
      end != token.c_str() + token.size() || errno == ERANGE) {
    config_failure(ctx, std::string("bad ") + what + " '" + token +
                            "' (expected a non-negative integer)");
  }
  return static_cast<std::uint64_t>(v);
}

std::uint32_t parse_u32(const std::string& token, const LineCtx& ctx,
                        const char* what) {
  const std::uint64_t v = parse_u64(token, ctx, what);
  if (v > 0xffffffffull) {
    config_failure(ctx, std::string("bad ") + what + " '" + token +
                            "' (does not fit in 32 bits)");
  }
  return static_cast<std::uint32_t>(v);
}

std::vector<double> parse_speeds(const std::string& csv, const LineCtx& ctx) {
  std::vector<double> speeds;
  std::string token;
  for (const char c : csv + ",") {
    if (c == ',') {
      if (token.empty()) config_failure(ctx, "empty speed entry");
      speeds.push_back(parse_double(token, ctx, "speed"));
      token.clear();
    } else {
      token += c;
    }
  }
  if (speeds.empty()) config_failure(ctx, "no speeds given");
  return speeds;
}

bool parse_on_off(const std::string& v, const LineCtx& ctx) {
  if (v == "on") return true;
  if (v == "off") return false;
  config_failure(ctx, "expected on|off, got '" + v + "'");
}

// "seed=A..B" (inclusive, A <= B, A >= 1).
void parse_sweep(const std::string& spec, ScenarioConfig& config,
                 const LineCtx& ctx) {
  const auto eq = spec.find('=');
  const auto dots = spec.find("..");
  if (eq == std::string::npos || dots == std::string::npos || dots < eq ||
      spec.substr(0, eq) != "seed") {
    config_failure(ctx, "expected sweep seed=A..B, got '" + spec + "'");
  }
  const std::string lo = spec.substr(eq + 1, dots - eq - 1);
  const std::string hi = spec.substr(dots + 2);
  if (lo.empty() || hi.empty()) {
    config_failure(ctx, "expected sweep seed=A..B, got '" + spec + "'");
  }
  config.sweep_begin = parse_u64(lo, ctx, "sweep begin");
  config.sweep_end = parse_u64(hi, ctx, "sweep end");
  if (config.sweep_begin == 0 || config.sweep_end < config.sweep_begin) {
    config_failure(ctx, "sweep range must satisfy 1 <= A <= B");
  }
}

workload::Workload build_workload(const ScenarioConfig& c) {
  if (c.workload == "synthetic") {
    workload::SyntheticConfig wc;
    if (c.duration > 0) wc.duration = c.duration;
    if (c.requests > 0) wc.total_requests = c.requests;
    if (c.file_sets > 0) wc.file_sets = c.file_sets;
    if (c.seed > 0) wc.seed = c.seed;
    return workload::make_synthetic(wc);
  }
  if (c.workload == "dfstrace") {
    workload::DfsTraceLikeConfig wc;
    if (c.duration > 0) wc.duration = c.duration;
    if (c.requests > 0) wc.total_requests = c.requests;
    if (c.file_sets > 0) wc.file_sets = c.file_sets;
    if (c.seed > 0) wc.seed = c.seed;
    return workload::make_dfstrace_like(wc);
  }
  if (c.workload == "opmix") {
    workload::OpWorkloadConfig wc;
    if (c.duration > 0) wc.duration = c.duration;
    if (c.requests > 0) wc.total_ops = c.requests;
    if (c.file_sets > 0) wc.file_sets = c.file_sets;
    if (c.seed > 0) wc.seed = c.seed;
    return workload::make_op_workload(wc).workload;
  }
  if (c.workload == "trace") {
    return workload::load_trace(c.trace_path_workload);
  }
  std::fprintf(stderr, "anufs-scenario: unknown workload '%s'\n",
               c.workload.c_str());
  std::abort();
}

/// The scenario's ANU knobs as one config; shared by the simulated run
/// (build_policy) and the serving phase so both tune identically.
core::AnuConfig make_anu_config(const ScenarioConfig& c) {
  core::AnuConfig anu_config;
  if (c.auto_threshold) anu_config.tuner.auto_threshold = true;
  if (c.threshold >= 0) anu_config.tuner.threshold = c.threshold;
  if (c.max_scale > 0) anu_config.tuner.max_scale = c.max_scale;
  if (c.median_average) {
    anu_config.tuner.average = core::AverageKind::kMedian;
  }
  if (c.pairwise || c.policy == "anu-pairwise") {
    anu_config.mode = core::TunerMode::kDecentralizedPairwise;
  }
  return anu_config;
}

std::unique_ptr<policy::PlacementPolicy> build_policy(
    const ScenarioConfig& c, const workload::Workload& work) {
  const policy::PolicyInfo* info = policy::find_policy(c.policy);
  if (info == nullptr) {
    // Scenario files reach parse-time validation first; this guards the
    // programmatic ScenarioConfig path.
    std::fprintf(stderr, "anufs-scenario: unknown policy '%s' (registered: %s)\n",
                 c.policy.c_str(), policy::registered_policy_list().c_str());
    std::abort();
  }
  policy::PolicyParams params;
  params.seed = c.seed > 0 ? c.seed : 1;
  params.anu = make_anu_config(c);
  params.reconfig_period = c.cluster.reconfig_period;
  params.workload = &work;
  params.pow_d = c.pow_d;
  for (std::uint32_t i = 0; i < c.cluster.server_speeds.size(); ++i) {
    params.capacities[ServerId{i}] = c.cluster.server_speeds[i];
  }
  for (const MembershipEvent& e : c.events) {
    if (e.kind == MembershipEvent::Kind::kAdd) {
      params.capacities[ServerId{e.server}] = e.speed;
    }
  }
  // Fault-plan additions commission servers too: capacity-aware
  // policies need their speeds known up front.
  for (const fault::AddEvent& e : c.faults.additions) {
    params.capacities[ServerId{e.server}] = e.speed;
  }
  return info->make(params);
}

}  // namespace

ScenarioConfig parse_scenario(std::istream& is,
                              const std::string& source_name) {
  ScenarioConfig config;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const LineCtx ctx{source_name, line_no};
    if (const auto hash_pos = line.find('#'); hash_pos != std::string::npos) {
      line.resize(hash_pos);
    }
    std::istringstream ss(line);
    std::string key;
    if (!(ss >> key)) continue;
    std::string value;
    const auto want = [&](const char* what) -> std::string& {
      if (!(ss >> value)) {
        config_failure(ctx, std::string("missing ") + what);
      }
      return value;
    };
    if (key == "workload") {
      config.workload = want("workload kind");
      if (config.workload == "trace") {
        config.trace_path_workload = want("trace path");
      }
    } else if (key == "policy") {
      config.policy = want("policy name");
      if (policy::find_policy(config.policy) == nullptr) {
        config_failure(ctx, "unknown policy '" + config.policy +
                                "' (registered: " +
                                policy::registered_policy_list() + ")");
      }
    } else if (key == "pow_d") {
      config.pow_d = parse_u32(want("choices"), ctx, "pow_d");
      if (config.pow_d < 1) {
        config_failure(ctx, "pow_d must be >= 1 (d choices per decision)");
      }
    } else if (key == "servers") {
      config.cluster.server_speeds = parse_speeds(want("speeds"), ctx);
    } else if (key == "period") {
      config.cluster.reconfig_period =
          parse_double(want("seconds"), ctx, "period");
    } else if (key == "duration") {
      config.duration = parse_double(want("seconds"), ctx, "duration");
    } else if (key == "requests") {
      config.requests = parse_u64(want("count"), ctx, "request count");
    } else if (key == "file_sets") {
      config.file_sets = parse_u32(want("count"), ctx, "file-set count");
    } else if (key == "seed") {
      config.seed = parse_u64(want("seed"), ctx, "seed");
      config.cluster.seed = config.seed;
    } else if (key == "san") {
      config.cluster.san.enabled = parse_on_off(want("on|off"), ctx);
    } else if (key == "detector") {
      config.cluster.detector.enabled = parse_on_off(want("on|off"), ctx);
    } else if (key == "report_loss") {
      config.cluster.net.report_loss =
          parse_double(want("probability"), ctx, "report loss");
    } else if (key == "routing_delay") {
      const double d = parse_double(want("seconds"), ctx, "routing delay");
      config.cluster.routing.model_staleness = d > 0;
      config.cluster.routing.distribution_delay = d;
    } else if (key == "movement") {
      config.cluster.movement.enabled = parse_on_off(want("on|off"), ctx);
    } else if (key == "threshold") {
      const std::string v = want("value");
      if (v == "auto") {
        config.auto_threshold = true;
      } else {
        config.threshold = parse_double(v, ctx, "threshold");
      }
    } else if (key == "max_scale") {
      config.max_scale = parse_double(want("value"), ctx, "max_scale");
    } else if (key == "average") {
      const std::string v = want("mean|median");
      if (v == "median") {
        config.median_average = true;
      } else if (v != "mean") {
        config_failure(ctx, "expected mean|median");
      }
    } else if (key == "fail" || key == "recover") {
      MembershipEvent e;
      e.kind = key == "fail" ? MembershipEvent::Kind::kFail
                             : MembershipEvent::Kind::kRecover;
      e.time = parse_double(want("time"), ctx, "time");
      e.server = parse_u32(want("server"), ctx, "server id");
      config.events.push_back(e);
    } else if (key == "add") {
      MembershipEvent e;
      e.kind = MembershipEvent::Kind::kAdd;
      e.time = parse_double(want("time"), ctx, "time");
      e.server = parse_u32(want("server"), ctx, "server id");
      e.speed = parse_double(want("speed"), ctx, "speed");
      config.events.push_back(e);
    } else if (key == "faults") {
      const fault::FaultPlan loaded = fault::load_fault_plan(want("path"));
      // Merge so `faults` and inline `fault` lines compose.
      config.faults.crashes.insert(config.faults.crashes.end(),
                                   loaded.crashes.begin(),
                                   loaded.crashes.end());
      config.faults.recoveries.insert(config.faults.recoveries.end(),
                                      loaded.recoveries.begin(),
                                      loaded.recoveries.end());
      config.faults.additions.insert(config.faults.additions.end(),
                                     loaded.additions.begin(),
                                     loaded.additions.end());
      config.faults.limps.insert(config.faults.limps.end(),
                                 loaded.limps.begin(), loaded.limps.end());
      config.faults.san_slowdowns.insert(config.faults.san_slowdowns.end(),
                                         loaded.san_slowdowns.begin(),
                                         loaded.san_slowdowns.end());
      config.faults.flaky_moves.insert(config.faults.flaky_moves.end(),
                                       loaded.flaky_moves.begin(),
                                       loaded.flaky_moves.end());
    } else if (key == "fault") {
      std::string directive;
      std::getline(ss, directive);
      if (directive.find_first_not_of(" \t") == std::string::npos) {
        config_failure(ctx, "missing fault directive");
      }
      fault::parse_fault_directive(directive, config.faults);
    } else if (key == "emit") {
      const std::string v = want("series|summary");
      if (v == "series") {
        config.emit_series = true;
      } else if (v != "summary") {
        config_failure(ctx, "expected series|summary");
      }
    } else if (key == "trace") {
      config.trace_path = want("path");
    } else if (key == "trace_categories") {
      const std::string v = want("categories");
      const std::optional<std::uint32_t> mask = obs::parse_categories(v);
      if (!mask.has_value()) {
        config_failure(ctx,
                       "bad trace categories '" + v +
                           "' (expected a comma list of delegate,tuner,"
                           "move,cache,fault,sched or 'all')");
      }
      config.trace_categories = *mask;
    } else if (key == "jobs") {
      config.jobs =
          static_cast<std::size_t>(parse_u64(want("count"), ctx, "jobs"));
      if (config.jobs == 0) config_failure(ctx, "jobs must be >= 1");
    } else if (key == "sweep") {
      parse_sweep(want("seed=A..B"), config, ctx);
    } else if (key == "serve_threads") {
      config.serve_threads = parse_u32(want("count"), ctx, "serve_threads");
    } else if (key == "serve_seconds") {
      config.serve_seconds =
          parse_double(want("seconds"), ctx, "serve_seconds");
      if (config.serve_seconds <= 0) {
        config_failure(ctx, "serve_seconds must be > 0");
      }
    } else {
      config_failure(ctx, "unknown key '" + key + "'");
    }
  }
  // Degenerate pow-d widths: more choices than the cluster has servers
  // is well-defined (probe everyone) but almost certainly a typo, so
  // warn and clamp to the initial size here; the policies additionally
  // clamp to the ALIVE count at every decision, so membership churn can
  // never make a configured d index outside the sampled set.
  if (config.pow_d > 0 && !config.cluster.server_speeds.empty() &&
      config.pow_d > config.cluster.server_speeds.size()) {
    std::fprintf(stderr,
                 "anufs-scenario: %s: pow_d %u exceeds the %zu-server "
                 "cluster; clamping to %zu\n",
                 source_name.c_str(), config.pow_d,
                 config.cluster.server_speeds.size(),
                 config.cluster.server_speeds.size());
    config.pow_d =
        static_cast<std::uint32_t>(config.cluster.server_speeds.size());
  }
  return config;
}

ScenarioConfig parse_scenario_text(const std::string& text) {
  std::istringstream is(text);
  return parse_scenario(is, "<inline>");
}

namespace {

/// Outcome of the optional real-time serving phase.
struct ServePhase {
  serve::ServeResult result;
  serve::EquivalenceReport equivalence;
};

/// Stand up the concurrent lookup service shaped by the scenario (same
/// seed, file_sets, fault plan, and ANU knobs as the simulated run),
/// serve for the configured window, then replay the recorded control-
/// plane log sequentially and require every concurrently-served sample
/// bit-identical. A divergent answer is a correctness bug, not a
/// degraded result — it aborts the scenario like any other violated
/// invariant.
ServePhase run_serve_phase(const ScenarioConfig& config) {
  serve::ServeConfig sc;
  sc.threads = config.serve_threads;
  sc.seconds = config.serve_seconds;
  if (config.seed > 0) sc.seed = config.seed;
  sc.n_servers =
      static_cast<std::uint32_t>(config.cluster.server_speeds.size());
  if (config.file_sets > 0) sc.file_sets = config.file_sets;
  sc.anu = make_anu_config(config);
  sc.faults = config.faults;
  serve::LookupService service(std::move(sc));
  ServePhase phase;
  phase.result = service.run();
  phase.equivalence = service.check_equivalence();
  ANUFS_ENSURES(phase.equivalence.ok());
  return phase;
}

cluster::RunResult run_built(const ScenarioConfig& config,
                             std::string* policy_name, RunProfile* profile,
                             std::optional<ServePhase>* serve_out = nullptr) {
  // Tracing: one sink, installed for THIS thread only (a parallel sweep
  // worker traces exactly its own run). The sink is passive — it never
  // schedules, draws randomness, or reorders anything — so the run
  // itself is bit-identical with tracing on or off.
  std::optional<obs::TraceSink> sink;
  std::optional<obs::ScopedTraceSink> installed;
  if (!config.trace_path.empty()) {
    sink.emplace(config.trace_categories);
    installed.emplace(*sink);
  }

  std::optional<obs::PhaseTimer> setup_timer;
  if (profile != nullptr) setup_timer.emplace(profile->setup);
  const workload::Workload work = build_workload(config);
  const std::unique_ptr<policy::PlacementPolicy> pol =
      build_policy(config, work);
  if (policy_name != nullptr) *policy_name = pol->name();
  cluster::ClusterSim sim(config.cluster, work, *pol);
  if (sink.has_value()) {
    // Stamp events with the run's own simulated clock from here on
    // (construction-time events carry t=0, which is when they happen).
    sink->set_clock([&sim]() { return sim.scheduler().now(); });
  }
  for (const MembershipEvent& e : config.events) {
    switch (e.kind) {
      case MembershipEvent::Kind::kFail:
        sim.schedule_failure(e.time, ServerId{e.server});
        break;
      case MembershipEvent::Kind::kRecover:
        sim.schedule_recovery(e.time, ServerId{e.server});
        break;
      case MembershipEvent::Kind::kAdd:
        sim.schedule_addition(e.time, ServerId{e.server}, e.speed);
        break;
    }
  }
  if (!config.faults.empty()) {
    fault::install_fault_plan(
        sim,
        static_cast<std::uint32_t>(config.cluster.server_speeds.size()),
        config.faults);
  }
  if (setup_timer.has_value()) setup_timer->stop();

  cluster::RunResult result;
  {
    std::optional<obs::PhaseTimer> run_timer;
    if (profile != nullptr) run_timer.emplace(profile->run);
    result = sim.run();
  }

  // Serving phase after the simulated run (real threads, wall-clock):
  // the sim proves placement quality, this proves the addressing hot
  // path serves it concurrently without changing an answer.
  std::optional<ServePhase> serve_phase;
  if (config.serve_threads > 0) {
    serve_phase.emplace(run_serve_phase(config));
  }
  if (serve_out != nullptr) *serve_out = serve_phase;

  if (sink.has_value()) {
    // Drain the ring FIRST: the metrics harvest reads the sink's health
    // counters (recorded/dropped), and harvesting before the final
    // flush would miss anything recorded in between — the snapshot
    // below is the flush, so trace.* and the exported events agree.
    const std::vector<obs::TraceEvent> events = sink->events();
    obs::Registry registry =
        collect_run_metrics(config, result, pol.get(), &*sink);
    if (serve_phase.has_value()) {
      serve::LookupService::harvest(serve_phase->result, registry);
      registry.counter("serve_equivalence_checked")
          .set(serve_phase->equivalence.samples_checked);
      registry.counter("serve_equivalence_digest")
          .set(serve_phase->equivalence.digest);
    }
    const bool ok =
        obs::write_text_file(config.trace_path, obs::to_jsonl(events)) &&
        obs::write_text_file(config.trace_path + ".chrome.json",
                             obs::to_chrome_trace(events)) &&
        obs::write_text_file(config.trace_path + ".metrics.json",
                             obs::to_json(registry));
    if (!ok) {
      std::fprintf(stderr, "anufs-scenario: cannot write trace files at %s\n",
                   config.trace_path.c_str());
    }
  }
  return result;
}

}  // namespace

cluster::RunResult run_scenario_quiet(const ScenarioConfig& config) {
  return run_built(config, nullptr, nullptr);
}

cluster::RunResult run_scenario_profiled(const ScenarioConfig& config,
                                         RunProfile& profile) {
  return run_built(config, nullptr, &profile);
}

cluster::RunResult run_scenario(const ScenarioConfig& config,
                                std::ostream& os) {
  std::string policy_name;
  std::optional<ServePhase> serve_phase;
  cluster::RunResult result =
      run_built(config, &policy_name, nullptr, &serve_phase);

  os << "# scenario: workload=" << config.workload
     << " policy=" << policy_name << " servers="
     << config.cluster.server_speeds.size() << "\n";
  if (config.emit_series) {
    metrics::emit_bundle(os, policy_name + " per-server mean latency (ms)",
                         result.latency_ms);
  }
  os << "requests " << result.completed << "/" << result.total_requests
     << " completed, " << result.lost << " lost\n";
  os << "moves " << result.moves << ", forwarded " << result.forwarded
     << "\n";
  if (!config.faults.empty()) {
    os << "faults " << config.faults.event_count() << " events, crash-moves "
       << result.crash_moves << ", move-failures " << result.move_failures
       << ", unresolved " << result.queued_at_end << "+"
       << result.held_at_end << "+" << result.in_transit_at_end
       << " (queued+held+in-transit)\n";
    for (const cluster::RecoveryEpisode& r : result.recoveries) {
      os << "  recovery at " << r.declared_at << " s: " << r.moves
         << " sets re-homed in " << metrics::TableEmitter::num(r.span())
         << " s\n";
    }
  }
  os << "run-mean latency " << result.mean_latency * 1e3 << " ms\n";
  for (const std::string& label : result.latency_ms.labels()) {
    os << "  " << label << " steady-state mean "
       << metrics::TableEmitter::num(
              result.latency_ms.at(label).tail_mean(1.0 / 3.0))
       << " ms\n";
  }
  if (config.cluster.san.enabled) {
    os << "san busy " << result.san_busy << " s, wasted-idle "
       << result.san_wasted_idle << " s, end-to-end "
       << result.san_mean_end_to_end * 1e3 << " ms\n";
  }
  if (serve_phase.has_value()) {
    const serve::ServeResult& s = serve_phase->result;
    const serve::EquivalenceReport& eq = serve_phase->equivalence;
    os << "serving " << s.threads << " threads x "
       << metrics::TableEmitter::num(s.seconds) << " s: " << s.lookups
       << " lookups ("
       << metrics::TableEmitter::num(s.lookups_per_second / 1e6)
       << "M/s), cache hit rate "
       << metrics::TableEmitter::num(s.cache.hit_rate()) << ", p99 "
       << metrics::TableEmitter::num(s.p99_ns) << " ns, " << s.ops_applied
       << " control-plane ops, generation " << s.final_generation << "\n";
    os << "serving equivalence OK: " << eq.samples_checked
       << " samples replayed bit-identical (digest " << eq.digest << ")\n";
  }
  return result;
}

}  // namespace anufs::driver
