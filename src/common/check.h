// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures. Checks are active in all build types: this library's
// correctness rests on a handful of arithmetic invariants (half-occupancy,
// one-partial-partition, ...) whose violation must never be silent.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace anufs::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "anufs: %s failed: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace anufs::detail

// Precondition on the caller.
#define ANUFS_EXPECTS(expr)                                              \
  ((expr) ? static_cast<void>(0)                                         \
          : ::anufs::detail::contract_failure("precondition", #expr,     \
                                              __FILE__, __LINE__))

// Postcondition / internal invariant of the callee.
#define ANUFS_ENSURES(expr)                                              \
  ((expr) ? static_cast<void>(0)                                         \
          : ::anufs::detail::contract_failure("invariant", #expr,        \
                                              __FILE__, __LINE__))
