// Clang thread-safety capability annotations, plus annotated wrappers
// around the standard synchronization primitives.
//
// The simulator's concurrency model is deliberately narrow: simulation
// state is thread-confined (one Scheduler / AnuSystem / TraceSink per
// run) and the only shared mutable state lives behind explicit locks at
// the run-granularity boundary (sim::ThreadPool). This header makes
// that lock discipline a COMPILE-TIME contract instead of a comment:
// fields carry ANUFS_GUARDED_BY, helpers carry ANUFS_REQUIRES, and any
// access that the analysis cannot prove to hold the right capability is
// a hard error under Clang (-Werror=thread-safety, enabled for every
// Clang build by the top-level CMakeLists).
//
// On non-Clang compilers every macro expands to nothing and the
// wrappers degrade to their std counterparts with zero overhead — GCC
// builds are unaffected, TSan remains the runtime backstop there.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define ANUFS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ANUFS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define ANUFS_CAPABILITY(x) ANUFS_THREAD_ANNOTATION(capability(x))
#define ANUFS_SCOPED_CAPABILITY ANUFS_THREAD_ANNOTATION(scoped_lockable)
#define ANUFS_GUARDED_BY(x) ANUFS_THREAD_ANNOTATION(guarded_by(x))
#define ANUFS_PT_GUARDED_BY(x) ANUFS_THREAD_ANNOTATION(pt_guarded_by(x))
#define ANUFS_ACQUIRED_BEFORE(...) \
  ANUFS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ANUFS_ACQUIRED_AFTER(...) \
  ANUFS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define ANUFS_REQUIRES(...) \
  ANUFS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ANUFS_REQUIRES_SHARED(...) \
  ANUFS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ANUFS_ACQUIRE(...) \
  ANUFS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ANUFS_ACQUIRE_SHARED(...) \
  ANUFS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define ANUFS_RELEASE(...) \
  ANUFS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ANUFS_RELEASE_SHARED(...) \
  ANUFS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define ANUFS_TRY_ACQUIRE(...) \
  ANUFS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ANUFS_EXCLUDES(...) ANUFS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ANUFS_ASSERT_CAPABILITY(x) \
  ANUFS_THREAD_ANNOTATION(assert_capability(x))
#define ANUFS_RETURN_CAPABILITY(x) ANUFS_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch. Deliberately unused in-tree: findings are fixed, not
// silenced (the same policy lint.sh applies to NOLINT).
#define ANUFS_NO_THREAD_SAFETY_ANALYSIS \
  ANUFS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace anufs::common {

/// std::mutex with a capability the analysis can track. Prefer the
/// scoped MutexLock over manual lock()/unlock().
class ANUFS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ANUFS_ACQUIRE() { mu_.lock(); }
  void unlock() ANUFS_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() ANUFS_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex; the analysis knows the capability is
/// held for exactly this object's lifetime. Not movable: a MutexLock
/// that exists holds its mutex, which is what lets CondVar::wait accept
/// one without further proof.
class ANUFS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ANUFS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() ANUFS_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable waiting on a held MutexLock. Predicates are
/// expressed as explicit `while (!cond) cv.wait(lock);` loops at the
/// call site rather than lambdas, so the guarded reads in the condition
/// sit in the caller's scope where the analysis can see the capability.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, sleeps, and reacquires before
  /// returning. Spurious wakeups happen; always wait in a loop.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace anufs::common
