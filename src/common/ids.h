// Strongly-typed identifiers shared across modules.
//
// ServerId and FileSetId are distinct wrapper types so that a file-set
// index can never be passed where a server index is expected (the two are
// both small integers and the bug would otherwise be silent).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace anufs {

/// Index of a metadata server within a cluster. Dense, assigned at
/// commissioning time, never reused within one simulation.
struct ServerId {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(ServerId, ServerId) = default;
};

/// Index of a file set (the indivisible unit of workload placement).
struct FileSetId {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(FileSetId, FileSetId) = default;
};

constexpr ServerId kInvalidServer{~std::uint32_t{0}};
constexpr FileSetId kInvalidFileSet{~std::uint32_t{0}};

}  // namespace anufs

template <>
struct std::hash<anufs::ServerId> {
  std::size_t operator()(anufs::ServerId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<anufs::FileSetId> {
  std::size_t operator()(anufs::FileSetId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
