// Function attributes carrying project-invariant contracts.
//
// ANUFS_HOT marks the request-path functions whose invariants the
// static checker (tools/anufs_lint.py, rule H1) enforces: a hot
// function must not — transitively, through the project call graph —
// allocate (new/malloc, node-based containers, std::string building),
// throw, or do I/O. The marker doubles as a real compiler hint
// (__attribute__((hot)) biases inlining and code placement).
//
// ANUFS_COLD marks the explicit slow paths reachable FROM hot code
// (pool growth, compaction, the tuner's full recompute): the H1
// traversal stops at a cold boundary, and the compiler moves the cold
// body out of the hot text. Marking a function cold is an auditable
// claim that it runs off the steady-state path — make it in the same
// commit that explains why.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define ANUFS_HOT __attribute__((hot))
#define ANUFS_COLD __attribute__((cold))
#else
#define ANUFS_HOT
#define ANUFS_COLD
#endif
