// Descriptive statistics over a sample of values (latencies, loads).
#pragma once

#include <cstdint>
#include <vector>

namespace anufs::metrics {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  /// Coefficient of variation (stddev/mean; 0 when mean is 0). The
  /// balance metric we report in tables: a perfectly balanced system has
  /// identical per-server values and cv == 0.
  [[nodiscard]] double cv() const { return mean == 0.0 ? 0.0 : stddev / mean; }
};

/// Compute summary statistics. Percentiles use the nearest-rank method.
[[nodiscard]] Summary summarize(std::vector<double> values);

/// Nearest-rank percentile of a sample (q in [0,1]); 0 for empty input.
[[nodiscard]] double percentile(std::vector<double> values, double q);

}  // namespace anufs::metrics
