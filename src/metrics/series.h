// Time-series collection: the "log file" of per-interval server latency
// the paper's simulator writes, from which Figures 6-11 are plotted.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"

namespace anufs::metrics {

/// One sampled series: (time, value) pairs in nondecreasing time order.
class Series {
 public:
  void append(double time, double value) {
    ANUFS_EXPECTS(points_.empty() || time >= points_.back().first);
    points_.emplace_back(time, value);
  }

  /// Pre-size for an expected point count (e.g. duration / period) so
  /// steady-state appends never reallocate mid-run.
  void reserve(std::size_t points) { points_.reserve(points); }

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

  [[nodiscard]] const std::vector<std::pair<double, double>>& points()
      const noexcept {
    return points_;
  }

  [[nodiscard]] std::vector<double> values() const;

  /// Largest value (0 for an empty series).
  [[nodiscard]] double max_value() const;

  /// Mean of values over the tail fraction [from, 1] of samples — used
  /// for "steady state" summaries after convergence.
  [[nodiscard]] double tail_mean(double from_fraction) const;

 private:
  std::vector<std::pair<double, double>> points_;
};

/// A labeled bundle of series sampled at the same instants (e.g. one per
/// server). Iteration order is label-sorted and therefore deterministic.
class SeriesBundle {
 public:
  Series& at(const std::string& label) { return series_[label]; }

  [[nodiscard]] const Series& at(const std::string& label) const {
    const auto it = series_.find(label);
    ANUFS_EXPECTS(it != series_.end());
    return it->second;
  }

  [[nodiscard]] bool contains(const std::string& label) const {
    return series_.contains(label);
  }

  [[nodiscard]] std::vector<std::string> labels() const;

  [[nodiscard]] std::size_t size() const noexcept { return series_.size(); }

  [[nodiscard]] const std::map<std::string, Series>& all() const noexcept {
    return series_;
  }

 private:
  std::map<std::string, Series> series_;
};

}  // namespace anufs::metrics
