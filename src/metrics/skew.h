// Load-imbalance metrics for placement quality (Table A in DESIGN.md):
// how far the most loaded server sits above the fair share.
#pragma once

#include <vector>

namespace anufs::metrics {

struct SkewReport {
  double max_over_mean = 0.0;   ///< max load / mean load (1.0 == perfect)
  double min_over_mean = 0.0;   ///< min load / mean load
  double cv = 0.0;              ///< coefficient of variation
  double max_load = 0.0;
  double mean_load = 0.0;
};

/// Skew of raw (unweighted) loads — e.g. file-set counts per server.
[[nodiscard]] SkewReport load_skew(const std::vector<double>& loads);

/// Skew of capacity-normalized loads: load_i / capacity_i. Under
/// heterogeneous servers a balanced system equalizes normalized load,
/// not raw load.
[[nodiscard]] SkewReport normalized_skew(const std::vector<double>& loads,
                                         const std::vector<double>& capacity);

}  // namespace anufs::metrics
