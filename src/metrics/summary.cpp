#include "metrics/summary.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace anufs::metrics {

namespace {

// Ceil-rank (nearest-rank) percentile over an ALREADY-SORTED sample.
// The single definition both percentile() and summarize() use — they
// previously carried two copies of the rank arithmetic, and only one
// handled q == 0 (ceil(0 * n) == 0 must mean "the minimum", not an
// underflowed rank).
double percentile_sorted(const std::vector<double>& sorted, double q) {
  ANUFS_EXPECTS(!sorted.empty());
  if (q <= 0.0) return sorted.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank - 1, sorted.size() - 1)];
}

}  // namespace

double percentile(std::vector<double> values, double q) {
  ANUFS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, q);
}

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  const std::size_t n = values.size();
  s.median = (n % 2 == 1) ? values[n / 2]
                          : 0.5 * (values[n / 2 - 1] + values[n / 2]);

  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(n);

  double var = 0.0;
  for (const double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(n));

  s.p95 = percentile_sorted(values, 0.95);
  s.p99 = percentile_sorted(values, 0.99);
  return s;
}

}  // namespace anufs::metrics
