#include "metrics/summary.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace anufs::metrics {

double percentile(std::vector<double> values, double q) {
  ANUFS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q * n));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return values[std::min(idx, values.size() - 1)];
}

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  const std::size_t n = values.size();
  s.median = (n % 2 == 1) ? values[n / 2]
                          : 0.5 * (values[n / 2 - 1] + values[n / 2]);

  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(n);

  double var = 0.0;
  for (const double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(n));

  const auto rank = [&](double q) {
    const auto r =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
    return values[std::min(r == 0 ? 0 : r - 1, n - 1)];
  };
  s.p95 = rank(0.95);
  s.p99 = rank(0.99);
  return s;
}

}  // namespace anufs::metrics
