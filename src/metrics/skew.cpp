#include "metrics/skew.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace anufs::metrics {

SkewReport load_skew(const std::vector<double>& loads) {
  SkewReport r;
  if (loads.empty()) return r;
  double sum = 0.0;
  double mx = loads.front();
  double mn = loads.front();
  for (const double v : loads) {
    sum += v;
    mx = std::max(mx, v);
    mn = std::min(mn, v);
  }
  const double mean = sum / static_cast<double>(loads.size());
  double var = 0.0;
  for (const double v : loads) var += (v - mean) * (v - mean);
  r.max_load = mx;
  r.mean_load = mean;
  if (mean > 0.0) {
    r.max_over_mean = mx / mean;
    r.min_over_mean = mn / mean;
    r.cv = std::sqrt(var / static_cast<double>(loads.size())) / mean;
  }
  return r;
}

SkewReport normalized_skew(const std::vector<double>& loads,
                           const std::vector<double>& capacity) {
  ANUFS_EXPECTS(loads.size() == capacity.size());
  std::vector<double> normalized;
  normalized.reserve(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    ANUFS_EXPECTS(capacity[i] > 0.0);
    normalized.push_back(loads[i] / capacity[i]);
  }
  return load_skew(normalized);
}

}  // namespace anufs::metrics
