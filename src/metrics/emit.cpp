#include "metrics/emit.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace anufs::metrics {

void emit_bundle(std::ostream& os, const std::string& title,
                 const SeriesBundle& bundle, double time_scale,
                 const std::string& time_unit, int precision) {
  ANUFS_EXPECTS(time_scale > 0.0);
  os << "# " << title << "\n";
  os << "# time_" << time_unit;
  const std::vector<std::string> labels = bundle.labels();
  for (const std::string& label : labels) os << ' ' << label;
  os << "\n";
  if (labels.empty()) return;

  const std::size_t rows = bundle.at(labels.front()).size();
  for (const std::string& label : labels) {
    ANUFS_EXPECTS(bundle.at(label).size() == rows);
  }
  os << std::fixed << std::setprecision(precision);
  for (std::size_t i = 0; i < rows; ++i) {
    const double t = bundle.at(labels.front()).points()[i].first;
    os << t / time_scale;
    for (const std::string& label : labels) {
      os << ' ' << bundle.at(label).points()[i].second;
    }
    os << "\n";
  }
}

TableEmitter::TableEmitter(std::ostream& os, std::vector<std::string> columns)
    : os_(os), columns_(std::move(columns)) {
  widths_.reserve(columns_.size());
  for (const std::string& c : columns_) {
    widths_.push_back(std::max<std::size_t>(c.size() + 2, 16));
  }
}

void TableEmitter::header(const std::string& title) {
  os_ << "# " << title << "\n";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os_ << std::left << std::setw(static_cast<int>(widths_[i])) << columns_[i];
  }
  os_ << "\n";
}

void TableEmitter::row(const std::vector<std::string>& cells) {
  ANUFS_EXPECTS(cells.size() == columns_.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os_ << std::left << std::setw(static_cast<int>(widths_[i])) << cells[i];
  }
  os_ << "\n";
}

std::string TableEmitter::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace anufs::metrics
