// Table/series emitters for the benchmark harness. Every figure bench
// prints a gnuplot-ready block: a '#'-prefixed header naming the columns
// followed by whitespace-aligned rows, one block per sub-figure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/series.h"

namespace anufs::metrics {

/// Print a bundle sampled at shared instants as one table:
///   # <title>
///   # time_<unit> <label0> <label1> ...
///   0.0  12.3  4.5 ...
/// Values are printed with `precision` digits after the decimal point;
/// times are divided by `time_scale` (e.g. 60 to report minutes).
void emit_bundle(std::ostream& os, const std::string& title,
                 const SeriesBundle& bundle, double time_scale = 60.0,
                 const std::string& time_unit = "min", int precision = 2);

/// Simple fixed-width table for summary rows.
class TableEmitter {
 public:
  TableEmitter(std::ostream& os, std::vector<std::string> columns);

  /// Print the header (once).
  void header(const std::string& title);

  /// Print one row; cell count must match the column count.
  void row(const std::vector<std::string>& cells);

  /// Format helper: fixed-point double.
  [[nodiscard]] static std::string num(double v, int precision = 2);

 private:
  std::ostream& os_;
  std::vector<std::string> columns_;
  std::vector<std::size_t> widths_;
};

}  // namespace anufs::metrics
