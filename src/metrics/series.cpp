#include "metrics/series.h"

#include <algorithm>

namespace anufs::metrics {

std::vector<double> Series::values() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& [t, v] : points_) out.push_back(v);
  return out;
}

double Series::max_value() const {
  double m = 0.0;
  for (const auto& [t, v] : points_) m = std::max(m, v);
  return m;
}

double Series::tail_mean(double from_fraction) const {
  ANUFS_EXPECTS(from_fraction >= 0.0 && from_fraction <= 1.0);
  if (points_.empty()) return 0.0;
  const auto start = static_cast<std::size_t>(
      from_fraction * static_cast<double>(points_.size()));
  const std::size_t first = std::min(start, points_.size() - 1);
  double sum = 0.0;
  for (std::size_t i = first; i < points_.size(); ++i) {
    sum += points_[i].second;
  }
  return sum / static_cast<double>(points_.size() - first);
}

std::vector<std::string> SeriesBundle::labels() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [label, s] : series_) out.push_back(label);
  return out;
}

}  // namespace anufs::metrics
