#include "disk/shared_disk.h"

#include <sstream>

namespace anufs::disk {

namespace {

/// Apply one journal record to a tree; aborts if the mutation does not
/// replay cleanly (it succeeded in this order once, so it must again).
void replay(fsmeta::NamespaceTree& tree, const JournalRecord& record) {
  using fsmeta::OpKind;
  using fsmeta::OpStatus;
  OpStatus status = OpStatus::kOk;
  switch (record.kind) {
    case OpKind::kCreate:
      status = tree.create(record.path, fsmeta::FileType::kFile).status;
      break;
    case OpKind::kMkdir:
      status = tree.create(record.path, fsmeta::FileType::kDirectory).status;
      break;
    case OpKind::kUnlink:
      status = tree.remove(record.path).status;
      break;
    case OpKind::kRename:
      status = tree.rename(record.path, record.path2).status;
      break;
    case OpKind::kSetAttr:
      status = tree.set_attr(record.path, record.size, record.mtime).status;
      break;
    default:
      ANUFS_ENSURES(false && "non-mutation in journal");
  }
  ANUFS_ENSURES(status == OpStatus::kOk);
}

std::string serialize_tree(const fsmeta::NamespaceTree& tree) {
  std::ostringstream os;
  tree.serialize(os);
  return os.str();
}

}  // namespace

FileSetImage::FileSetImage() {
  checkpoint_ = serialize_tree(fsmeta::NamespaceTree{});
}

void FileSetImage::write_checkpoint(const fsmeta::NamespaceTree& tree,
                                    std::uint64_t through_lsn) {
  ANUFS_EXPECTS(through_lsn >= checkpoint_lsn_);
  checkpoint_ = serialize_tree(tree);
  checkpoint_lsn_ = through_lsn;
}

fsmeta::NamespaceTree FileSetImage::recover(const Journal& journal) const {
  std::istringstream is(checkpoint_);
  fsmeta::NamespaceTree tree = fsmeta::NamespaceTree::deserialize(is);
  for (const JournalRecord& record : journal.durable()) {
    if (record.lsn <= checkpoint_lsn_) continue;  // covered by checkpoint
    replay(tree, record);
  }
  tree.check_consistency();
  return tree;
}

JournaledFileSet::JournaledFileSet(fsmeta::CostModel cost)
    : service_(cost) {}

void JournaledFileSet::bootstrap(const fsmeta::NamespaceTree& tree) {
  ANUFS_EXPECTS(!crashed_);
  ANUFS_EXPECTS(journal_.next_lsn() == 1);  // nothing happened yet
  service_.tree() = tree;
  image_.write_checkpoint(tree, 0);
}

fsmeta::OpResult JournaledFileSet::execute(const fsmeta::MetadataOp& op) {
  ANUFS_EXPECTS(!crashed_);
  const fsmeta::OpResult result = service_.execute(op);
  if (result.status == fsmeta::OpStatus::kOk &&
      fsmeta::is_mutation(op.kind)) {
    JournalRecord record;
    record.kind = op.kind;
    record.path = op.path;
    record.path2 = op.path2;
    record.size = op.size;
    record.mtime = op.mtime;
    (void)journal_.append(std::move(record));
  }
  return result;
}

std::size_t JournaledFileSet::flush() {
  ANUFS_EXPECTS(!crashed_);
  return journal_.flush();
}

void JournaledFileSet::checkpoint() {
  ANUFS_EXPECTS(!crashed_);
  (void)journal_.flush();
  image_.write_checkpoint(service_.tree(), journal_.last_durable_lsn());
  journal_.truncate_through(image_.checkpoint_lsn());
}

std::size_t JournaledFileSet::crash() {
  ANUFS_EXPECTS(!crashed_);
  crashed_ = true;
  return journal_.crash();
}

void JournaledFileSet::recover() {
  ANUFS_EXPECTS(crashed_);
  fsmeta::NamespaceTree recovered = image_.recover(journal_);
  // The server restarts with the recovered tree; session locks are
  // volatile by design (clients re-open after a failover).
  fsmeta::MetadataService fresh(service_.cost());
  fresh.tree() = std::move(recovered);
  service_ = std::move(fresh);
  crashed_ = false;
}

bool JournaledFileSet::image_is_consistent() const {
  const fsmeta::NamespaceTree recovered = image_.recover(journal_);
  std::ostringstream live;
  service_.tree().serialize(live);
  std::ostringstream from_disk;
  recovered.serialize(from_disk);
  return live.str() == from_disk.str();
}

}  // namespace anufs::disk
