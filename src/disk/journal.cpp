#include "disk/journal.h"

#include <algorithm>

namespace anufs::disk {

void Journal::truncate_through(std::uint64_t through) {
  const auto it = std::partition_point(
      durable_.begin(), durable_.end(),
      [through](const JournalRecord& r) { return r.lsn <= through; });
  durable_.erase(durable_.begin(), it);
  truncated_through_ = std::max(truncated_through_, through);
}

}  // namespace anufs::disk
