// Metadata write-ahead journal.
//
// Storage Tank metadata servers "store, serve, and WRITE file system
// metadata" to shared disks; before a file set can move, the releasing
// server "flushes its cache, writing all dirty data back to stable
// storage" to create a consistent disk image (paper §4/§7). This module
// is that machinery: every successful mutation appends a journal
// record; flush() makes the volatile tail durable; recovery replays the
// durable tail over the last checkpoint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "fsmeta/ops.h"

namespace anufs::disk {

/// One durable mutation record. Only mutations are journaled — reads
/// leave no trace.
struct JournalRecord {
  std::uint64_t lsn = 0;  ///< log sequence number, dense from 1
  fsmeta::OpKind kind = fsmeta::OpKind::kCreate;
  std::string path;
  std::string path2;        ///< rename destination
  std::uint64_t size = 0;   ///< setattr payload
  std::uint64_t mtime = 0;
};

/// Volatile + durable journal state for one file set.
class Journal {
 public:
  /// Append a record to the VOLATILE tail (in the server's memory).
  /// Returns its lsn.
  std::uint64_t append(JournalRecord record) {
    ANUFS_EXPECTS(fsmeta::is_mutation(record.kind));
    record.lsn = next_lsn_++;
    volatile_.push_back(std::move(record));
    return next_lsn_ - 1;
  }

  /// Records appended but not yet durable — the "dirty cache" whose
  /// size drives the flush cost at file-set movement time.
  [[nodiscard]] std::size_t dirty_count() const noexcept {
    return volatile_.size();
  }

  /// Make the volatile tail durable. Returns the number of records
  /// that were flushed.
  std::size_t flush() {
    const std::size_t n = volatile_.size();
    durable_.insert(durable_.end(),
                    std::make_move_iterator(volatile_.begin()),
                    std::make_move_iterator(volatile_.end()));
    volatile_.clear();
    return n;
  }

  /// Crash: the volatile tail is lost; durable records survive.
  /// Returns the number of records lost.
  std::size_t crash() {
    const std::size_t n = volatile_.size();
    volatile_.clear();
    // lsns of lost records are never reused: a dense durable history
    // with gaps at the end is exactly what a torn log looks like.
    return n;
  }

  /// Durable records with lsn > `through` (the checkpoint's lsn).
  [[nodiscard]] const std::vector<JournalRecord>& durable() const noexcept {
    return durable_;
  }

  /// Truncate durable records with lsn <= `through` (after a
  /// checkpoint made them redundant).
  void truncate_through(std::uint64_t through);

  [[nodiscard]] std::uint64_t last_durable_lsn() const noexcept {
    return durable_.empty() ? truncated_through_ : durable_.back().lsn;
  }

  [[nodiscard]] std::uint64_t next_lsn() const noexcept { return next_lsn_; }

 private:
  std::vector<JournalRecord> volatile_;
  std::vector<JournalRecord> durable_;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t truncated_through_ = 0;
};

}  // namespace anufs::disk
