// The shared-disk image of one file set: a checkpoint (serialized
// namespace) plus the durable journal tail. Any server can read it;
// exactly one serves it. This is what makes file-set movement cheap in
// a shared-disk architecture — the data never moves, only the serving
// responsibility.
#pragma once

#include <cstdint>
#include <string>

#include "disk/journal.h"
#include "fsmeta/metadata_service.h"

namespace anufs::disk {

/// Checkpoint + journal-tail image, and the recovery procedure.
class FileSetImage {
 public:
  /// Empty image: recovery yields a fresh namespace (just the root).
  FileSetImage();

  /// Install a checkpoint: the serialized tree, covering every
  /// mutation with lsn <= `through_lsn`.
  void write_checkpoint(const fsmeta::NamespaceTree& tree,
                        std::uint64_t through_lsn);

  [[nodiscard]] std::uint64_t checkpoint_lsn() const noexcept {
    return checkpoint_lsn_;
  }

  [[nodiscard]] std::size_t checkpoint_bytes() const noexcept {
    return checkpoint_.size();
  }

  /// Rebuild the namespace from the checkpoint and replay the durable
  /// journal records with lsn > checkpoint_lsn. Every replayed
  /// mutation must succeed (it succeeded when first executed, in the
  /// same order); aborts otherwise — a corrupt image must never be
  /// silently half-recovered.
  [[nodiscard]] fsmeta::NamespaceTree recover(const Journal& journal) const;

 private:
  std::string checkpoint_;        // serialized NamespaceTree
  std::uint64_t checkpoint_lsn_ = 0;
};

/// A file set's full server-side state: live service + journal + disk
/// image, with the flush/checkpoint/crash/recover lifecycle.
class JournaledFileSet {
 public:
  explicit JournaledFileSet(fsmeta::CostModel cost = {});

  /// Install a pre-existing namespace as both the live tree and the
  /// initial checkpoint (the disk image a server finds when it first
  /// acquires the file set). Only valid before any operation ran.
  void bootstrap(const fsmeta::NamespaceTree& tree);

  /// Execute an operation; successful mutations are journaled
  /// (volatile until the next flush).
  fsmeta::OpResult execute(const fsmeta::MetadataOp& op);

  /// Write all dirty records to stable storage (the shed-side flush of
  /// a file-set move). Returns the number of records made durable.
  std::size_t flush();

  /// Flush, then write a checkpoint and truncate the journal.
  void checkpoint();

  /// The serving node crashed: volatile journal records are lost and
  /// the live state is invalid until recover(). Returns the lost count.
  std::size_t crash();

  /// Rebuild the live service from the stable image (checkpoint +
  /// durable journal). Locks are volatile and do not survive.
  void recover();

  /// crash() immediately followed by recover().
  std::size_t crash_and_recover() {
    const std::size_t lost = crash();
    recover();
    return lost;
  }

  /// True between crash() and recover(): the live state is unusable.
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

  /// True when the stable image recovers to EXACTLY the live tree
  /// (byte-equal serializations) — the consistency a shedding server
  /// must establish before handing a file set away.
  [[nodiscard]] bool image_is_consistent() const;

  [[nodiscard]] fsmeta::MetadataService& service() noexcept {
    return service_;
  }
  [[nodiscard]] const fsmeta::MetadataService& service() const noexcept {
    return service_;
  }
  [[nodiscard]] const Journal& journal() const noexcept { return journal_; }
  [[nodiscard]] const FileSetImage& image() const noexcept { return image_; }

 private:
  fsmeta::MetadataService service_;
  Journal journal_;
  FileSetImage image_;
  bool crashed_ = false;
};

}  // namespace anufs::disk
