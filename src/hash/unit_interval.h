// Fixed-point arithmetic on the unit interval.
//
// ANU randomization hashes file sets to [0,1) and carves the interval
// into server regions. We represent positions and lengths in units of
// 2^-64 so that the half-occupancy invariant (regions sum to exactly 1/2)
// and partition boundaries (powers of two) are EXACT — floating point
// would accumulate drift across thousands of rescalings.
#pragma once

#include <cstdint>

namespace anufs::hash {

/// A point in [0, 1): the value is pos / 2^64. A raw 64-bit hash IS a
/// uniformly distributed Pos, with no conversion step.
using Pos = std::uint64_t;

/// A length within [0, 1). The full interval (measure 1.0) is not
/// representable; ANU never needs more than 1/2 + one partition.
using Measure = std::uint64_t;

/// Exactly one half of the unit interval: the occupancy invariant target.
inline constexpr Measure kHalfInterval = std::uint64_t{1} << 63;

/// Convert to double for reporting only — never for invariant math.
[[nodiscard]] constexpr double to_double(Measure m) {
  return static_cast<double>(m) * 0x1.0p-64;
}

/// The largest representable point/length: one ulp (2^-64) below 1.0.
inline constexpr Measure kMaxMeasure = ~Measure{0};

/// Convert a fraction in [0,1) to fixed point, for configuration input.
/// Out-of-range input is clamped to the representable range rather than
/// hitting the undefined float->int conversion: negatives (and NaN) map
/// to 0, anything >= 1.0 maps to kMaxMeasure. For f in [0,1) the product
/// f * 2^64 is exact (scaling by a power of two), so the cast is always
/// in range and the round trip through to_double loses nothing.
[[nodiscard]] constexpr Measure from_double(double f) {
  if (!(f > 0.0)) return 0;  // negatives, -0.0, and NaN
  if (f >= 1.0) return kMaxMeasure;
  return static_cast<Measure>(f * 0x1.0p64);
}

}  // namespace anufs::hash
