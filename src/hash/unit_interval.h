// Fixed-point arithmetic on the unit interval.
//
// ANU randomization hashes file sets to [0,1) and carves the interval
// into server regions. We represent positions and lengths in units of
// 2^-64 so that the half-occupancy invariant (regions sum to exactly 1/2)
// and partition boundaries (powers of two) are EXACT — floating point
// would accumulate drift across thousands of rescalings.
#pragma once

#include <cstdint>

namespace anufs::hash {

/// A point in [0, 1): the value is pos / 2^64. A raw 64-bit hash IS a
/// uniformly distributed Pos, with no conversion step.
using Pos = std::uint64_t;

/// A length within [0, 1). The full interval (measure 1.0) is not
/// representable; ANU never needs more than 1/2 + one partition.
using Measure = std::uint64_t;

/// Exactly one half of the unit interval: the occupancy invariant target.
inline constexpr Measure kHalfInterval = std::uint64_t{1} << 63;

/// Convert to double for reporting only — never for invariant math.
[[nodiscard]] constexpr double to_double(Measure m) {
  return static_cast<double>(m) * 0x1.0p-64;
}

/// Convert a fraction in [0,1) to fixed point, for configuration input.
[[nodiscard]] constexpr Measure from_double(double f) {
  return static_cast<Measure>(f * 0x1.0p64);
}

}  // namespace anufs::hash
