#include "hash/hash_family.h"

#include "common/check.h"

namespace anufs::hash {

std::uint32_t HashFamily::fallback_server(std::uint64_t fp,
                                          std::uint32_t n_servers) const {
  ANUFS_EXPECTS(n_servers > 0);
  // A distinct perturbation from every probe round (probe rounds use odd
  // multiples of the golden-ratio constant; the fallback uses an even
  // one), then an unbiased multiply-shift reduction.
  const std::uint64_t x =
      mix64(fp ^ salt_ ^ 0x2545F4914F6CDD1DULL);
  const __uint128_t wide = static_cast<__uint128_t>(x) * n_servers;
  return static_cast<std::uint32_t>(wide >> 64);
}

}  // namespace anufs::hash
