// Stateless 64-bit mixing primitives used to build the agreed-upon hash
// family. These are finalizers with full avalanche: flipping any input
// bit flips each output bit with probability ~1/2, which is what the
// unit-interval placement needs for its uniformity guarantees.
#pragma once

#include <cstdint>
#include <string_view>

namespace anufs::hash {

/// Stafford variant 13 of the MurmurHash3 finalizer (the SplitMix64
/// mixer). Bijective on 64 bits.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Second, independent finalizer (Murmur3 fmix64 constants). Having two
/// distinct mixers lets the family interleave them so successive rounds
/// share no algebraic structure.
[[nodiscard]] constexpr std::uint64_t mix64_v2(std::uint64_t z) {
  z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCDULL;
  z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53ULL;
  return z ^ (z >> 33);
}

/// Multi-lane forms of the two finalizers, for batched probing: apply
/// the scalar mixer to `n` independent inputs. Each lane is the exact
/// scalar recurrence (same constants, same shifts), so lane `l` of the
/// output is bit-identical to `mix64(in[l])` — batching changes
/// throughput, never a value. The flat loop over contiguous lanes is
/// what buys the speed: the scalar mixer is a serial three-multiply
/// dependency chain (~15 cycles of latency), while independent lanes
/// pipeline at multiply throughput and give the compiler a
/// vectorization-shaped loop (GCC/Clang unroll it; with AVX-512DQ it
/// vectorizes outright).
inline void mix64_many(const std::uint64_t* in, std::uint32_t n,
                       std::uint64_t xor_pre, std::uint64_t* out) {
  for (std::uint32_t l = 0; l < n; ++l) out[l] = mix64(in[l] ^ xor_pre);
}

inline void mix64_v2_many(const std::uint64_t* in, std::uint32_t n,
                          std::uint64_t xor_pre, std::uint64_t* out) {
  for (std::uint32_t l = 0; l < n; ++l) out[l] = mix64_v2(in[l] ^ xor_pre);
}

// Eight-lane vector forms of the two finalizers. AVX-512DQ gives a
// native 8x64-bit multiply (vpmullq), so one vector instruction per
// mixer step replaces eight scalar ones. The lane arithmetic is the
// exact scalar recurrence — mullo is the low 64 bits of the product,
// srli/xor are the same `>>`/`^` on each lane — so lane l of the result
// is bit-identical to mix64(in[l]) / mix64_v2(in[l]). Compiled via a
// per-function target attribute (the translation unit stays baseline
// x86-64); callers must gate on __builtin_cpu_supports at runtime.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ANUFS_MIX64_X8 1
#endif

#if ANUFS_MIX64_X8
}  // namespace anufs::hash
#include <immintrin.h>
namespace anufs::hash {

// GCC's shift intrinsics pass _mm512_undefined_epi32() as the masked-off
// source of an unmasked shift, which -Wmaybe-uninitialized flags; the
// lanes are fully overwritten, so the warning is a header false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

/// set1 over an unsigned 64-bit pattern (the intrinsic takes long long).
__attribute__((target("avx512f"))) [[nodiscard]] inline __m512i
broadcast_u64(std::uint64_t v) {
  return _mm512_set1_epi64(static_cast<long long>(v));
}

__attribute__((target("avx512f,avx512dq"))) [[nodiscard]] inline __m512i
mix64_x8(__m512i z) {
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 30)),
                         broadcast_u64(0xBF58476D1CE4E5B9ULL));
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 27)),
                         broadcast_u64(0x94D049BB133111EBULL));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

__attribute__((target("avx512f,avx512dq"))) [[nodiscard]] inline __m512i
mix64_v2_x8(__m512i z) {
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 33)),
                         broadcast_u64(0xFF51AFD7ED558CCDULL));
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 33)),
                         broadcast_u64(0xC4CEB9FE1A85EC53ULL));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 33));
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif  // ANUFS_MIX64_X8

/// FNV-1a fingerprint of a unique file-set name. The fingerprint is the
/// canonical 64-bit identity that every node hashes identically; the
/// target system's administrator-assigned unique names map through this.
[[nodiscard]] constexpr std::uint64_t fingerprint(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ULL;
  }
  // Finalize so short names still avalanche.
  return mix64(h);
}

}  // namespace anufs::hash
