// Stateless 64-bit mixing primitives used to build the agreed-upon hash
// family. These are finalizers with full avalanche: flipping any input
// bit flips each output bit with probability ~1/2, which is what the
// unit-interval placement needs for its uniformity guarantees.
#pragma once

#include <cstdint>
#include <string_view>

namespace anufs::hash {

/// Stafford variant 13 of the MurmurHash3 finalizer (the SplitMix64
/// mixer). Bijective on 64 bits.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Second, independent finalizer (Murmur3 fmix64 constants). Having two
/// distinct mixers lets the family interleave them so successive rounds
/// share no algebraic structure.
[[nodiscard]] constexpr std::uint64_t mix64_v2(std::uint64_t z) {
  z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCDULL;
  z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53ULL;
  return z ^ (z >> 33);
}

/// FNV-1a fingerprint of a unique file-set name. The fingerprint is the
/// canonical 64-bit identity that every node hashes identically; the
/// target system's administrator-assigned unique names map through this.
[[nodiscard]] constexpr std::uint64_t fingerprint(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ULL;
  }
  // Finalize so short names still avalanche.
  return mix64(h);
}

}  // namespace anufs::hash
