// The agreed-upon family of hash functions used for placement probes.
//
// Round r of the probe sequence for a file set with fingerprint f is
// H_r(f); file sets landing in unmapped space are re-hashed with the next
// function (Section 4 of the paper). Every node evaluates the same family
// so addressing requires no communication and no I/O.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/attributes.h"
#include "hash/mix64.h"
#include "hash/unit_interval.h"

namespace anufs::hash {

/// Indexed family {H_0, H_1, ...} of independent-looking 64-bit hashes.
///
/// Construction: perturb the fingerprint with a round-dependent odd
/// constant, then alternate two unrelated finalizers. Each H_r is a
/// bijection of the fingerprint for fixed r, so distinct file sets never
/// collide within a round, and rounds are pairwise uncorrelated in every
/// statistical test we run (see tests/hash_family_test.cpp).
class HashFamily {
 public:
  /// A family is parameterized by a cluster-wide salt so that two
  /// independent clusters do not correlate. Salt 0 is the default family.
  explicit constexpr HashFamily(std::uint64_t salt = 0) : salt_(salt) {}

  /// The salt-and-tweak pre-xor of round `round`: H_r(f) =
  /// mixer_r(f ^ round_pre(r)). Exposed so batch loops can hoist and
  /// broadcast it once per round instead of once per lane group.
  [[nodiscard]] constexpr std::uint64_t round_pre(std::uint32_t round) const {
    const std::uint64_t tweak =
        (static_cast<std::uint64_t>(round) * 2 + 1) * 0x9E3779B97F4A7C15ULL;
    return salt_ ^ tweak;
  }

  /// Position of probe round `round` for fingerprint `fp`.
  [[nodiscard]] constexpr ANUFS_HOT Pos probe(std::uint64_t fp,
                                              std::uint32_t round) const {
    const std::uint64_t x = fp ^ round_pre(round);
    return (round & 1u) ? mix64_v2(x) : mix64(x);
  }

  /// Multi-lane probe: positions of round `round` for `n` independent
  /// fingerprints at once. Lane `l` of `out` is bit-identical to
  /// probe(fps[l], round) — the round tweak is hoisted once and the
  /// finalizer runs as a flat lane loop (hash::mix64_many), so a batch
  /// mixes at multiply throughput instead of chaining one fingerprint's
  /// three-multiply latency after another's. This is the mixer stage of
  /// PlacementMap::locate_many.
  ANUFS_HOT void probe_many(const std::uint64_t* fps, std::uint32_t n,
                            std::uint32_t round, Pos* out) const {
    const std::uint64_t pre = round_pre(round);
    if (round & 1u) {
      mix64_v2_many(fps, n, pre, out);
    } else {
      mix64_many(fps, n, pre, out);
    }
  }

#if ANUFS_MIX64_X8
  /// Eight-lane vector probe: lane l is bit-identical to
  /// probe(fps[l], round). The round tweak broadcasts once; the lanes
  /// run the vector finalizer (hash::mix64_x8 / mix64_v2_x8). Callers
  /// must have checked avx512f+avx512dq support at runtime.
  __attribute__((target("avx512f,avx512dq"))) [[nodiscard]] ANUFS_HOT __m512i
  probe_x8(__m512i fps, std::uint32_t round) const {
    return probe_x8_pre(fps, broadcast_u64(round_pre(round)), round);
  }

  /// probe_x8 with the round pre-xor already broadcast (round_pre(round)
  /// through broadcast_u64) — `round` only selects the finalizer. Lets a
  /// batch loop pay the broadcast once per round rather than per group.
  __attribute__((target("avx512f,avx512dq"))) [[nodiscard]] ANUFS_HOT
  static __m512i
  probe_x8_pre(__m512i fps, __m512i pre, std::uint32_t round) {
    const __m512i x = _mm512_xor_si512(fps, pre);
    return (round & 1u) ? mix64_v2_x8(x) : mix64_x8(x);
  }
#endif  // ANUFS_MIX64_X8

  /// Convenience: probe by name.
  [[nodiscard]] constexpr Pos probe_name(std::string_view name,
                                         std::uint32_t round) const {
    return probe(fingerprint(name), round);
  }

  /// The direct-to-server fallback hash used after `max_rounds` failed
  /// probes: maps the fingerprint to an index in [0, n_servers).
  [[nodiscard]] ANUFS_HOT std::uint32_t fallback_server(
      std::uint64_t fp, std::uint32_t n_servers) const;

  [[nodiscard]] constexpr std::uint64_t salt() const noexcept {
    return salt_;
  }

 private:
  std::uint64_t salt_;
};

}  // namespace anufs::hash
