// The agreed-upon family of hash functions used for placement probes.
//
// Round r of the probe sequence for a file set with fingerprint f is
// H_r(f); file sets landing in unmapped space are re-hashed with the next
// function (Section 4 of the paper). Every node evaluates the same family
// so addressing requires no communication and no I/O.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/attributes.h"
#include "hash/mix64.h"
#include "hash/unit_interval.h"

namespace anufs::hash {

/// Indexed family {H_0, H_1, ...} of independent-looking 64-bit hashes.
///
/// Construction: perturb the fingerprint with a round-dependent odd
/// constant, then alternate two unrelated finalizers. Each H_r is a
/// bijection of the fingerprint for fixed r, so distinct file sets never
/// collide within a round, and rounds are pairwise uncorrelated in every
/// statistical test we run (see tests/hash_family_test.cpp).
class HashFamily {
 public:
  /// A family is parameterized by a cluster-wide salt so that two
  /// independent clusters do not correlate. Salt 0 is the default family.
  explicit constexpr HashFamily(std::uint64_t salt = 0) : salt_(salt) {}

  /// Position of probe round `round` for fingerprint `fp`.
  [[nodiscard]] constexpr ANUFS_HOT Pos probe(std::uint64_t fp,
                                              std::uint32_t round) const {
    const std::uint64_t tweak =
        (static_cast<std::uint64_t>(round) * 2 + 1) * 0x9E3779B97F4A7C15ULL;
    const std::uint64_t x = fp ^ salt_ ^ tweak;
    return (round & 1u) ? mix64_v2(x) : mix64(x);
  }

  /// Convenience: probe by name.
  [[nodiscard]] constexpr Pos probe_name(std::string_view name,
                                         std::uint32_t round) const {
    return probe(fingerprint(name), round);
  }

  /// The direct-to-server fallback hash used after `max_rounds` failed
  /// probes: maps the fingerprint to an index in [0, n_servers).
  [[nodiscard]] ANUFS_HOT std::uint32_t fallback_server(
      std::uint64_t fp, std::uint32_t n_servers) const;

  [[nodiscard]] constexpr std::uint64_t salt() const noexcept {
    return salt_;
  }

 private:
  std::uint64_t salt_;
};

}  // namespace anufs::hash
