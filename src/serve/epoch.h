// Epoch-based reclamation for single-writer, many-reader snapshot
// publication (the serving mode's RCU analogue).
//
// The protocol has one writer thread and up to `max_readers` reader
// slots. A reader PINS an epoch before touching any published object
// and UNPINS when done; the writer RETIRES a superseded object stamped
// with a fresh epoch and frees it only once every pinned reader has
// advanced past that stamp. Readers never take a lock, never wait, and
// never observe a freed object; the writer never waits for readers
// either — reclamation is deferred, not blocking (grace detection is a
// bounded scan of the reader slots on the writer's own schedule).
//
// Memory-ordering argument (all operations on `global_`, the slots, and
// the publisher's object pointer are seq_cst, so one total order S over
// them exists):
//
//   writer:  ptr.store(new)  <S  global_.fetch_add  <S  slot scans
//   reader:  global_.load -> e,  slot.exchange(e),  ptr.load
//
// Retire stamp for the old object is the value global_ takes AFTER the
// pointer swap. Case 1 — the writer's scan observes the reader's slot:
// a pinned epoch e < stamp defers the free (the reader may hold the old
// pointer); e >= stamp means the reader pinned after the fetch_add, so
// its ptr.load follows the swap in S and sees the new object. Case 2 —
// the scan does NOT observe the slot (reader was between its global_
// load and its slot exchange): then the scan's slot load precedes the
// reader's exchange in S, so the reader's ptr.load — later still in S —
// follows the writer's swap and sees the new object; freeing the old
// one is safe. Either way no reader can dereference a freed snapshot.
// tests/serve_stress_test.cpp re-proves this dynamically under TSan.
//
// Pin cost is one seq_cst exchange (~a locked xchg); serving amortizes
// it over a batch of lookups, so it vanishes against the ~2.7 ns cached
// locate (measured by BM_ServeLocate).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/attributes.h"
#include "common/check.h"

namespace anufs::serve {

class EpochDomain {
 public:
  /// Slot value meaning "this reader holds no published object".
  static constexpr std::uint64_t kQuiescent = 0;

  explicit EpochDomain(std::size_t max_readers) : slots_(max_readers) {
    ANUFS_EXPECTS(max_readers >= 1);
  }

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  [[nodiscard]] std::size_t max_readers() const noexcept {
    return slots_.size();
  }

  // ---- reader side -------------------------------------------------------

  /// Pin the current epoch into `slot`. Until unpin(), any object whose
  /// retire stamp exceeds the returned epoch stays allocated. Re-pinning
  /// an already-pinned slot simply advances it (the per-batch idiom).
  ANUFS_HOT std::uint64_t pin(std::size_t slot) noexcept {
    const std::uint64_t e = global_.load(std::memory_order_seq_cst);
    // seq_cst exchange: the slot publication must be ordered before the
    // subsequent object-pointer load in the single total order S (see
    // file comment); a release store would not give us that.
    slots_[slot].epoch.exchange(e, std::memory_order_seq_cst);
    return e;
  }

  ANUFS_HOT void unpin(std::size_t slot) noexcept {
    slots_[slot].epoch.store(kQuiescent, std::memory_order_release);
  }

  // ---- writer side -------------------------------------------------------

  /// Advance the global epoch; the returned value stamps a retirement.
  std::uint64_t advance() noexcept {
    return global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  [[nodiscard]] std::uint64_t current() const noexcept {
    return global_.load(std::memory_order_seq_cst);
  }

  /// Smallest pinned epoch, or max() when every slot is quiescent. An
  /// object retired at stamp S is reclaimable iff S <= min_active():
  /// every reader that could still hold it would be pinned below S.
  [[nodiscard]] std::uint64_t min_active() const noexcept {
    std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
    for (const Slot& s : slots_) {
      const std::uint64_t e = s.epoch.load(std::memory_order_seq_cst);
      if (e != kQuiescent && e < min) min = e;
    }
    return min;
  }

 private:
  // One cache line per slot: a pinning reader must not false-share with
  // its neighbours (pin/unpin are the per-batch steady state).
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kQuiescent};
  };

  // Starts at 1 so kQuiescent can never be a real epoch.
  std::atomic<std::uint64_t> global_{1};
  std::vector<Slot> slots_;
};

/// RAII pin over one reader slot (the per-batch guard).
class EpochGuard {
 public:
  ANUFS_HOT EpochGuard(EpochDomain& domain, std::size_t slot) noexcept
      : domain_(domain), slot_(slot) {
    (void)domain_.pin(slot_);
  }
  ANUFS_HOT ~EpochGuard() { domain_.unpin(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain& domain_;
  std::size_t slot_;
};

}  // namespace anufs::serve
