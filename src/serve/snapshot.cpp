#include "serve/snapshot.h"

namespace anufs::serve {

SnapshotStore::SnapshotStore(std::size_t max_readers)
    : epochs_(max_readers) {}

SnapshotStore::~SnapshotStore() {
  // Contract: all readers have been joined; nothing is pinned. Every
  // retired snapshot and the current one are writer-owned again.
  for (const auto& [snap, stamp] : retired_) {
    (void)stamp;
    delete snap;
    ++freed_;
  }
  retired_.clear();
  delete current_.load(std::memory_order_seq_cst);
}

void SnapshotStore::publish(const core::PlacementMap& map) {
  auto* snap = new Snapshot{map, map.regions().generation(), published_};
  // The value copy above copies the live map's mutation hook too
  // (std::function is copyable); clear it so the frozen snapshot can
  // never notify anyone — it is immutable from here on.
  snap->map.regions().set_mutation_hook(nullptr);
  const Snapshot* old =
      current_.exchange(snap, std::memory_order_seq_cst);
  ++published_;
  last_generation_ = snap->generation;
  if (old != nullptr) {
    // Stamp AFTER the swap: any reader that can still hold `old` pinned
    // an epoch below this stamp (see the ordering argument in epoch.h).
    retired_.emplace_back(old, epochs_.advance());
  }
  reclaim();
}

bool SnapshotStore::publish_if_changed(const core::PlacementMap& map) {
  const std::uint64_t gen = map.regions().generation();
  if (published_ != 0 && gen == last_generation_) return false;
  // Generations only grow; observing a smaller one would mean we were
  // handed a different map object than last time.
  ANUFS_EXPECTS(published_ == 0 || gen > last_generation_);
  publish(map);
  return true;
}

void SnapshotStore::reclaim() {
  if (retired_.empty()) return;
  const std::uint64_t min_active = epochs_.min_active();
  // Retirement stamps are monotone, so the reclaimable set is a prefix.
  std::size_t keep = 0;
  while (keep < retired_.size() && retired_[keep].second <= min_active) {
    delete retired_[keep].first;
    ++freed_;
    ++keep;
  }
  retired_.erase(retired_.begin(),
                 retired_.begin() + static_cast<std::ptrdiff_t>(keep));
}

}  // namespace anufs::serve
