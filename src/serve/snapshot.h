// Epoch-reclaimed placement snapshots: the immutable state a serving
// reader routes against.
//
// The live AnuSystem stays single-threaded (the project's confinement
// rule) and is owned by the serving WRITER thread. After every control-
// plane operation the writer publishes a Snapshot — a value copy of the
// PlacementMap plus its generation — through a SnapshotStore. Readers
// pin an epoch (serve/epoch.h), load the current snapshot pointer, and
// route any number of lookups against it with their own per-thread
// PlacementCache; they never block on the control plane and the control
// plane never blocks on them. Superseded snapshots are retired into a
// writer-local list and freed once every reader epoch has advanced past
// the retirement stamp — "why retired snapshots are safe to free" is
// the memory-ordering argument in epoch.h (DESIGN.md §6i walks it in
// prose).
//
// Publication correctness leans on the same discipline the placement
// cache does: rule G1 statically guarantees every RegionMap mutator
// advances the generation, and the mutation hook (RegionMap::
// set_mutation_hook) marks the live map dirty at each mutator's tail,
// so publish_if_changed() can (a) skip no-op publishes O(1)-cheaply and
// (b) assert that the hook and the generation agree — a mutation can
// neither escape publication nor publish a half-mutated map (the hook
// only fires at op boundaries).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/attributes.h"
#include "common/check.h"
#include "core/placement.h"
#include "serve/epoch.h"

namespace anufs::serve {

/// One immutable, generation-stamped placement configuration. `map` is
/// never mutated after construction (its mutation hook is cleared, so
/// it cannot even notify).
struct Snapshot {
  core::PlacementMap map;
  std::uint64_t generation = 0;  ///< map.regions().generation() at publish
  std::uint64_t seq = 0;         ///< publish sequence number, from 0
};

/// Single-writer/many-reader snapshot cell with epoch reclamation.
/// Writer methods (publish*, reclaim, destructor) belong to one thread;
/// acquire/release may be called concurrently from any reader slot.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::size_t max_readers);

  /// Frees the current snapshot and everything still retired. Callers
  /// must have quiesced every reader first (the serving harness joins
  /// its readers before the store dies).
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  // ---- writer side -------------------------------------------------------

  /// Publish a snapshot of `map` unconditionally. Retires the previous
  /// snapshot and opportunistically reclaims whatever is now safe.
  void publish(const core::PlacementMap& map);

  /// Publish iff `map`'s generation differs from the last published one
  /// (the per-op fast path; a no-op round costs one integer compare).
  /// Returns true when a snapshot was published.
  bool publish_if_changed(const core::PlacementMap& map);

  /// Free every retired snapshot whose grace period has elapsed.
  void reclaim();

  [[nodiscard]] std::uint64_t published() const noexcept {
    return published_;
  }
  [[nodiscard]] std::uint64_t freed() const noexcept { return freed_; }
  [[nodiscard]] std::size_t retired_pending() const noexcept {
    return retired_.size();
  }
  [[nodiscard]] std::uint64_t last_generation() const noexcept {
    return last_generation_;
  }

  // ---- reader side -------------------------------------------------------

  /// Pin `slot`'s epoch and return the current snapshot. The pointer
  /// stays valid until release(slot) — or the next acquire on the same
  /// slot, which re-pins and may therefore let the previous snapshot be
  /// reclaimed. Never returns null once the writer has published.
  [[nodiscard]] ANUFS_HOT const Snapshot* acquire(std::size_t slot) noexcept {
    (void)epochs_.pin(slot);
    return current_.load(std::memory_order_seq_cst);
  }

  ANUFS_HOT void release(std::size_t slot) noexcept { epochs_.unpin(slot); }

  [[nodiscard]] EpochDomain& epochs() noexcept { return epochs_; }

 private:
  EpochDomain epochs_;
  std::atomic<const Snapshot*> current_{nullptr};
  /// Writer-confined: superseded snapshots awaiting their grace period.
  std::vector<std::pair<const Snapshot*, std::uint64_t>> retired_;
  std::uint64_t published_ = 0;
  std::uint64_t freed_ = 0;
  std::uint64_t last_generation_ = 0;
};

}  // namespace anufs::serve
