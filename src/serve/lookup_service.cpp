#include "serve/lookup_service.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "common/check.h"
#include "hash/mix64.h"
#include "metrics/summary.h"
#include "sim/pacing.h"

namespace anufs::serve {
namespace {

/// Order-stable fold of one served answer into a digest chain.
[[nodiscard]] constexpr std::uint64_t fold_result(
    std::uint64_t digest, std::uint64_t fp, const core::LocateResult& r) {
  std::uint64_t x = digest ^ fp;
  x = hash::mix64(x ^ (static_cast<std::uint64_t>(r.server.value) |
                       (static_cast<std::uint64_t>(r.probes) << 32) |
                       (r.fallback ? std::uint64_t{1} << 63 : 0)));
  return hash::mix64(x ^ r.position);
}

[[nodiscard]] bool results_equal(const core::LocateResult& a,
                                 const core::LocateResult& b) noexcept {
  return a.server == b.server && a.probes == b.probes &&
         a.fallback == b.fallback && a.position == b.position;
}

}  // namespace

LookupService::LookupService(ServeConfig config)
    : config_(std::move(config)),
      store_(config_.threads),
      writer_rng_(sim::derive_seed(config_.seed, "serve/writer")) {
  ANUFS_EXPECTS(config_.threads >= 1);
  ANUFS_EXPECTS(config_.n_servers >= 2);
  ANUFS_EXPECTS(config_.batch_size >= 1);
  ANUFS_EXPECTS(config_.file_sets >= 1);
  // Without a wall-clock window the run must terminate by op count.
  ANUFS_EXPECTS(config_.seconds > 0.0 || config_.writer_ops > 0);
  config_.min_alive = std::max<std::uint32_t>(
      1, std::min(config_.min_alive, config_.n_servers));

  // The shared working set: fingerprints are hash outputs in the real
  // system, so a derived-stream draw models them faithfully.
  fingerprints_.reserve(config_.file_sets);
  sim::Xoshiro256 fps = sim::make_stream(config_.seed, "serve/filesets");
  for (std::uint32_t i = 0; i < config_.file_sets; ++i) {
    fingerprints_.push_back(fps());
  }

  initial_ids_.reserve(config_.n_servers);
  for (std::uint32_t i = 0; i < config_.n_servers; ++i) {
    initial_ids_.push_back(ServerId{i});
  }
  system_ = std::make_unique<core::AnuSystem>(config_.anu, initial_ids_);

  // Fold the fault plan's membership events into the churn schedule in
  // time order (reversed storage; the writer pops from the back). Limp
  // and SAN windows shape latency in the simulator, not addressing, so
  // serving mode ignores them.
  struct TimedEvent {
    double time;
    bool is_fail;
    ServerId server;
  };
  std::vector<TimedEvent> timed;
  for (const auto& e : config_.faults.crashes) {
    timed.push_back({e.time, true, ServerId{e.server}});
  }
  for (const auto& e : config_.faults.recoveries) {
    timed.push_back({e.time, false, ServerId{e.server}});
  }
  for (const auto& e : config_.faults.additions) {
    timed.push_back({e.time, false, ServerId{e.server}});
  }
  std::stable_sort(timed.begin(), timed.end(),
                   [](const TimedEvent& a, const TimedEvent& b) {
                     return a.time > b.time;  // reversed for pop_back()
                   });
  plan_events_.reserve(timed.size());
  std::uint32_t max_id = config_.n_servers;
  for (const TimedEvent& e : timed) {
    plan_events_.emplace_back(e.is_fail, e.server);
    max_id = std::max(max_id, e.server.value + 1);
  }
  next_fresh_server_ = max_id;

  // Per-reader state, heap-pinned: the atomics (and the epoch slots they
  // pair with) must never move.
  readers_.reserve(config_.threads);
  const std::size_t cache_capacity =
      config_.reader_cache_capacity != 0
          ? config_.reader_cache_capacity
          : std::max<std::size_t>(16384, std::size_t{16} * config_.file_sets);
  for (std::uint32_t i = 0; i < config_.threads; ++i) {
    readers_.push_back(std::make_unique<ReaderState>(
        sim::derive_seed(config_.seed, "serve/reader", i), cache_capacity,
        config_.batch_size));
  }

  // The publication hook: every RegionMap mutation (statically complete
  // by rule G1) marks the live map dirty; the writer publishes at the
  // next op boundary and asserts hook and generation agree.
  system_->placement().regions().set_mutation_hook(
      [this] { map_dirty_ = true; });
}

LookupService::~LookupService() { stop(); }

void LookupService::start() {
  ANUFS_EXPECTS(!started_);
  started_ = true;
  // Readers must never observe a null snapshot: publish the initial
  // configuration before any reader launches.
  store_.publish(system_->placement());
  serve_begin_ns_ = sim::monotonic_ns();
  pool_ = std::make_unique<sim::ThreadPool>(config_.threads);
  for (std::uint32_t i = 0; i < config_.threads; ++i) {
    pool_->submit([this, i] { reader_loop(i); });
  }
  writer_ = std::thread([this] { writer_loop(); });
}

void LookupService::stop() {
  if (!started_ || joined_) return;
  stop_.store(true, std::memory_order_seq_cst);
  writer_.join();
  pool_->wait_idle();
  pool_.reset();
  const std::uint64_t end_ns = sim::monotonic_ns();
  joined_ = true;

  // Summarize. Everything below is join-ordered with the readers, so
  // the non-atomic per-reader state is safe to read now.
  ServeResult& r = result_;
  r.threads = config_.threads;
  r.seconds = sim::ns_to_seconds(serve_begin_ns_, end_ns);
  std::vector<double> all_batch_ns;
  for (const auto& reader : readers_) {
    r.lookups += reader->lookups.load(std::memory_order_relaxed);
    const auto stats = reader->cache.stats();
    r.cache.hits += stats.hits;
    r.cache.misses += stats.misses;
    r.cache.invalidations += stats.invalidations;
    r.cache.revalidated += stats.revalidated;
    r.digest ^= reader->digest;
    r.samples += reader->samples.size();
    r.latency_ns.merge(reader->latency_ns);
    all_batch_ns.insert(all_batch_ns.end(), reader->batch_ns.begin(),
                        reader->batch_ns.end());
  }
  r.lookups_per_second =
      r.seconds > 0.0 ? static_cast<double>(r.lookups) / r.seconds : 0.0;
  r.mean_ns = r.latency_ns.mean();
  r.p50_ns = metrics::percentile(all_batch_ns, 0.50);
  r.p99_ns = metrics::percentile(std::move(all_batch_ns), 0.99);
  r.ops_applied = ops_.size();
  r.snapshots_published = store_.published();
  r.snapshots_freed = store_.freed();
  r.snapshots_pending = store_.retired_pending();
  r.final_generation = store_.last_generation();
}

ServeResult LookupService::run() {
  start();
  if (config_.seconds > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(config_.seconds));
    std::this_thread::sleep_until(deadline);
  } else {
    // Deterministic-shape mode: wind down once the writer has applied
    // its whole op budget and every reader has served min_batches.
    while (!writer_done_.load(std::memory_order_relaxed) ||
           !readers_warmed()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stop();
  return result_;
}

bool LookupService::readers_warmed() const {
  for (const auto& reader : readers_) {
    if (reader->batches.load(std::memory_order_relaxed) <
        config_.min_batches) {
      return false;
    }
  }
  return true;
}

LiveStats LookupService::live_stats() const {
  LiveStats out;
  for (const auto& reader : readers_) {
    out.lookups += reader->lookups.load(std::memory_order_relaxed);
    out.batches += reader->batches.load(std::memory_order_relaxed);
    const auto stats = reader->cache.stats();
    out.cache.hits += stats.hits;
    out.cache.misses += stats.misses;
    out.cache.invalidations += stats.invalidations;
    out.cache.revalidated += stats.revalidated;
  }
  return out;
}

const std::vector<WriterOp>& LookupService::ops() const {
  ANUFS_EXPECTS(joined_);
  return ops_;
}

std::vector<Sample> LookupService::all_samples() const {
  ANUFS_EXPECTS(joined_);
  std::vector<Sample> out;
  for (const auto& reader : readers_) {
    out.insert(out.end(), reader->samples.begin(), reader->samples.end());
  }
  return out;
}

const ServeResult& LookupService::result() const {
  ANUFS_EXPECTS(joined_);
  return result_;
}

// ---- writer ----------------------------------------------------------------

void LookupService::writer_loop() {
  sim::Pacer pacer(config_.writer_ops_per_second);
  while (!stop_.load(std::memory_order_relaxed)) {
    if (writer_done_.load(std::memory_order_relaxed)) {
      // Op budget exhausted (seconds-mode keeps serving): keep draining
      // the retired list so a long tail of reader batches cannot pile
      // snapshots up, then idle briefly.
      store_.reclaim();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    if (!apply_next_op()) {
      writer_done_.store(true, std::memory_order_relaxed);
      continue;
    }
    pacer.pace();
  }
  writer_done_.store(true, std::memory_order_relaxed);
}

bool LookupService::apply_next_op() {
  if (config_.writer_ops != 0 && ops_.size() >= config_.writer_ops) {
    return false;
  }

  WriterOp op;
  const std::uint32_t alive = system_->regions().server_count();
  const std::uint32_t server_cap = 2 * config_.n_servers;

  // One fault-plan membership event every 4th op until the plan drains;
  // otherwise a seeded draw (retune-heavy, the realistic mix).
  bool from_plan = false;
  if (!plan_events_.empty() && ops_.size() % 4 == 3) {
    const auto [is_fail, server] = plan_events_.back();
    plan_events_.pop_back();
    const bool present = system_->regions().has_server(server);
    if (is_fail && present && alive > config_.min_alive) {
      op.kind = WriterOp::Kind::kFail;
      op.server = server;
      from_plan = true;
    } else if (!is_fail && !present) {
      op.kind = WriterOp::Kind::kAdd;
      op.server = server;
      from_plan = true;
    }
    // An inapplicable plan event (the generated churn already failed or
    // revived that server) falls through to a generated op.
  }

  if (!from_plan) {
    switch (writer_rng_.next_below(8)) {
      case 5: {  // fail a random survivor
        if (alive <= config_.min_alive) break;
        const auto& ids = system_->regions().server_ids_view();
        op.server = ids[writer_rng_.next_below(ids.size())];
        op.kind = WriterOp::Kind::kFail;
        break;
      }
      case 6: {  // recover a previously-failed server
        if (failed_pool_.empty()) break;
        const std::size_t pick = writer_rng_.next_below(failed_pool_.size());
        op.server = failed_pool_[pick];
        op.kind = WriterOp::Kind::kAdd;
        break;
      }
      case 7: {  // commission a fresh server
        if (alive >= server_cap) break;
        op.server = ServerId{next_fresh_server_};
        op.kind = WriterOp::Kind::kAdd;
        break;
      }
      default:
        break;  // kRetune
    }
  }

  if (op.kind == WriterOp::Kind::kRetune) {
    // Synthetic interval reports, recorded verbatim so replay feeds the
    // tuner bit-identical inputs.
    const std::vector<ServerId> ids = system_->alive();
    op.reports.reserve(ids.size());
    for (const ServerId id : ids) {
      core::ServerReport report;
      report.id = id;
      report.mean_latency = 0.0005 + 0.0045 * writer_rng_.next_double();
      report.requests = 50 + writer_rng_.next_below(200);
      op.reports.push_back(report);
    }
  }

  // Bookkeeping the generated ops need for their preconditions.
  if (op.kind == WriterOp::Kind::kFail) {
    failed_pool_.push_back(op.server);
  } else if (op.kind == WriterOp::Kind::kAdd) {
    const auto it =
        std::find(failed_pool_.begin(), failed_pool_.end(), op.server);
    if (it != failed_pool_.end()) {
      failed_pool_.erase(it);
    } else if (op.server.value >= next_fresh_server_) {
      next_fresh_server_ = op.server.value + 1;
    }
  }

  apply_op(*system_, op);
  op.generation_after = system_->regions().generation();
  ops_.push_back(std::move(op));

  // Publish-on-dirty, and assert the hook and the generation agree: a
  // mutator that forgot its stamp (impossible under rule G1) or a hook
  // firing without a generation bump would trip here immediately.
  const bool published = store_.publish_if_changed(system_->placement());
  ANUFS_ENSURES(published == map_dirty_);
  map_dirty_ = false;
  return true;
}

void LookupService::apply_op(core::AnuSystem& system,
                             const WriterOp& op) const {
  switch (op.kind) {
    case WriterOp::Kind::kRetune:
      (void)system.reconfigure(op.reports);
      break;
    case WriterOp::Kind::kFail:
      system.fail_server(op.server);
      break;
    case WriterOp::Kind::kAdd:
      system.add_server(op.server);
      break;
  }
}

// ---- readers ---------------------------------------------------------------

void LookupService::reader_loop(std::size_t idx) {
  ReaderState& r = *readers_[idx];
  const std::uint32_t batch = config_.batch_size;
  const std::uint64_t sample_mask =
      (std::uint64_t{1} << config_.sample_every_batches_log2) - 1;
  // Cap the raw per-batch timing sample (the histogram keeps counting
  // past it); 1M batches of timing resolve p99 far beyond what the
  // log-bucketed histogram could.
  constexpr std::size_t kMaxTimedBatches = std::size_t{1} << 20;
  r.batch_ns.reserve(std::min<std::size_t>(kMaxTimedBatches, 1u << 14));

  while (!stop_.load(std::memory_order_relaxed)) {
    const std::uint64_t t0 = sim::monotonic_ns();
    const Snapshot* snap = store_.acquire(idx);
    run_batch(r, snap->map, batch);
    if ((r.batch_count & sample_mask) == 0 &&
        r.samples.size() < config_.max_samples_per_reader) {
      record_sample(r, *snap);
    }
    store_.release(idx);
    const std::uint64_t t1 = sim::monotonic_ns();

    const double per_lookup_ns =
        static_cast<double>(t1 - t0) / static_cast<double>(batch);
    r.latency_ns.record(per_lookup_ns);
    if (r.batch_ns.size() < kMaxTimedBatches) {
      r.batch_ns.push_back(per_lookup_ns);
    }
    ++r.batch_count;
    // Single-writer relaxed publication for live_stats().
    r.lookups.store(r.lookups.load(std::memory_order_relaxed) + batch,
                    std::memory_order_relaxed);
    r.batches.store(r.batch_count, std::memory_order_relaxed);
  }
}

void LookupService::run_batch(ReaderState& r, const core::PlacementMap& map,
                              std::uint32_t n) {
  // Draw the whole batch first (locate never touches the rng, so the
  // draw sequence is exactly what the per-lookup loop produced), resolve
  // it with one batched sweep, then fold in draw order. Staging is
  // preallocated at batch_size in the ReaderState constructor.
  const std::uint64_t set_size = fingerprints_.size();
  std::uint64_t* fps = r.batch_fps.data();
  core::LocateResult* results = r.batch_results.data();
  for (std::uint32_t i = 0; i < n; ++i) {
    fps[i] = fingerprints_[r.rng.next_below(set_size)];
  }
  r.cache.locate_many(map, std::span<const std::uint64_t>(fps, n),
                      std::span<core::LocateResult>(results, n));
  std::uint64_t digest = r.digest;
  for (std::uint32_t i = 0; i < n; ++i) {
    digest = fold_result(digest, fps[i], results[i]);
  }
  r.digest = digest;
}

void LookupService::record_sample(ReaderState& r, const Snapshot& snap) {
  // A torn or re-published snapshot would disagree with its own stamp.
  ANUFS_ENSURES(snap.map.regions().generation() == snap.generation);
  Sample s;
  s.fingerprint = fingerprints_[r.rng.next_below(fingerprints_.size())];
  s.generation = snap.generation;
  s.result = r.cache.locate(snap.map, s.fingerprint);
  if (config_.validate_inline) {
    // The cached answer must equal THIS snapshot's uncached derivation —
    // the inline half of the correctness battery (the replay half is
    // check_equivalence()).
    const core::LocateResult ref = snap.map.locate(s.fingerprint);
    ANUFS_ENSURES(results_equal(s.result, ref));
  }
  r.samples.push_back(s);
}

// ---- equivalence -----------------------------------------------------------

EquivalenceReport LookupService::check_equivalence() const {
  ANUFS_EXPECTS(joined_);
  EquivalenceReport report;

  // Group samples by the generation they were served from; order within
  // a generation by fingerprint so the digest is schedule-independent.
  std::map<std::uint64_t, std::vector<const Sample*>> by_gen;
  for (const auto& reader : readers_) {
    for (const Sample& s : reader->samples) {
      by_gen[s.generation].push_back(&s);
    }
  }
  for (auto& entry : by_gen) {
    std::vector<const Sample*>& bucket = entry.second;
    std::sort(bucket.begin(), bucket.end(),
              [](const Sample* a, const Sample* b) {
                return a->fingerprint < b->fingerprint;
              });
  }

  // Sequential replay: a fresh system, the recorded ops in order. Every
  // published generation appears at exactly one op boundary (or the
  // initial state), and the samples served from it must match the
  // uncached sequential derivation bit-for-bit.
  core::AnuSystem replay(config_.anu, initial_ids_);
  std::vector<std::uint64_t> bucket_fps;
  std::vector<core::LocateResult> bucket_refs;
  const auto validate_at = [&](std::uint64_t generation) {
    const auto it = by_gen.find(generation);
    if (it == by_gen.end()) return;
    // One batched uncached sweep re-derives the whole generation bucket.
    bucket_fps.resize(it->second.size());
    bucket_refs.resize(it->second.size());
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      bucket_fps[i] = it->second[i]->fingerprint;
    }
    replay.locate_many_uncached(bucket_fps, bucket_refs);
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      const Sample* s = it->second[i];
      ++report.samples_checked;
      if (!results_equal(s->result, bucket_refs[i])) ++report.mismatches;
      report.digest = fold_result(report.digest ^ generation,
                                  s->fingerprint, s->result);
    }
    by_gen.erase(it);
  };

  validate_at(replay.regions().generation());
  for (const WriterOp& op : ops_) {
    apply_op(replay, op);
    // Replay must walk the exact generation sequence the writer saw.
    ANUFS_ENSURES(replay.regions().generation() == op.generation_after);
    validate_at(op.generation_after);
  }
  for (const auto& entry : by_gen) {
    report.unmatched_generation += entry.second.size();
  }
  return report;
}

// ---- harvest ---------------------------------------------------------------

void LookupService::harvest(const ServeResult& result,
                            obs::Registry& registry) {
  registry.counter("serve_lookups").set(result.lookups);
  registry.counter("serve_threads").set(result.threads);
  registry.counter("serve_ops_applied").set(result.ops_applied);
  registry.counter("serve_snapshots_published")
      .set(result.snapshots_published);
  registry.counter("serve_snapshots_freed").set(result.snapshots_freed);
  registry.counter("serve_snapshots_pending")
      .set(static_cast<std::uint64_t>(result.snapshots_pending));
  registry.counter("serve_final_generation").set(result.final_generation);
  registry.counter("serve_samples")
      .set(static_cast<std::uint64_t>(result.samples));
  registry.counter("serve_cache_hits").set(result.cache.hits);
  registry.counter("serve_cache_misses").set(result.cache.misses);
  registry.counter("serve_cache_invalidations")
      .set(result.cache.invalidations);
  registry.counter("serve_cache_revalidated").set(result.cache.revalidated);
  registry.gauge("serve_seconds").set(result.seconds);
  registry.gauge("serve_lookups_per_second").set(result.lookups_per_second);
  registry.gauge("serve_cache_hit_rate").set(result.cache.hit_rate());
  registry.gauge("serve_lookup_mean_ns").set(result.mean_ns);
  registry.gauge("serve_lookup_p50_ns").set(result.p50_ns);
  registry.gauge("serve_lookup_p99_ns").set(result.p99_ns);
  registry
      .histogram("serve_lookup_latency_ns", result.latency_ns.base(),
                 result.latency_ns.buckets().size())
      .merge(result.latency_ns);
}

}  // namespace anufs::serve
