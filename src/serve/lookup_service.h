// Serving mode: a concurrent lookup service over a live AnuSystem.
//
// The simulator proves ANU's placement properties in virtual time; the
// LookupService proves the ADDRESSING hot path serves real concurrent
// traffic. One WRITER thread owns the AnuSystem (the project's
// single-thread confinement rule, unchanged) and drives seed-
// deterministic control-plane churn — delegate retunes, server failures,
// commissions — publishing an immutable placement snapshot through a
// SnapshotStore after every mutation. N READER threads each own a
// PlacementCache and route lookups against the snapshot they have
// pinned; they never take a lock and never block on the control plane,
// and the control plane never waits for them (serve/epoch.h has the
// reclamation proof, DESIGN.md §6i the prose).
//
// Correctness is checked two ways, both exercised by the test battery:
//
//  * INLINE — each recorded sample is validated against the very
//    snapshot it was served from (cached result == that snapshot's
//    uncached locate), so a torn or half-published map cannot hide;
//  * REPLAY — the writer records every control-plane op verbatim
//    (retune reports included); check_equivalence() replays the log on
//    a fresh AnuSystem and requires every concurrently-served sample to
//    be bit-identical — all four LocateResult fields — to the
//    sequential derivation at the same generation. Concurrency may
//    change timing and throughput, never an answer.
//
// Readers draw fingerprints from a shared immutable working set, batch
// their lookups under one epoch pin (run_batch is the ANUFS_HOT loop;
// rule H1 statically forbids it from allocating, throwing, locking, or
// sleeping), and keep single-writer relaxed-atomic counters so
// live_stats() can be harvested from any thread mid-serve.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/attributes.h"
#include "core/anu_system.h"
#include "core/placement_cache.h"
#include "fault/fault_plan.h"
#include "obs/metrics_registry.h"
#include "serve/snapshot.h"
#include "sim/random.h"
#include "sim/thread_pool.h"

namespace anufs::serve {

struct ServeConfig {
  /// Reader thread count (each gets its own epoch slot, cache, RNG).
  std::uint32_t threads = 4;
  /// Wall-clock serving window. 0 = run until the writer exhausts
  /// `writer_ops` and every reader has completed `min_batches` (the
  /// deterministic-shape mode the tests use).
  double seconds = 1.0;
  std::uint64_t seed = 42;

  // ---- cluster / placement ----
  std::uint32_t n_servers = 16;  ///< initial servers, ids 0..n-1
  std::uint32_t file_sets = 4096;
  core::AnuConfig anu;  ///< tuner/placement knobs (defaults are fine)

  // ---- writer churn ----
  /// Control-plane ops to apply. 0 = unlimited (churn for the whole
  /// window).
  std::uint64_t writer_ops = 0;
  /// Target control-plane rate; 0 = apply ops back-to-back.
  double writer_ops_per_second = 200.0;
  /// Never fail below this many alive servers.
  std::uint32_t min_alive = 2;
  /// Optional fault plan: its crash/recover/add events are folded into
  /// the churn schedule (in time order) between generated retunes.
  fault::FaultPlan faults;

  // ---- reader shape ----
  std::uint32_t batch_size = 256;  ///< lookups per epoch pin
  /// With seconds == 0: each reader runs at least this many batches.
  std::uint64_t min_batches = 64;
  /// Record one sample every 2^k batches per reader (k = this; the
  /// sample is an extra lookup validated inline against the pinned
  /// snapshot when validate_inline is set).
  std::uint32_t sample_every_batches_log2 = 2;
  std::size_t max_samples_per_reader = 4096;
  bool validate_inline = true;
  /// Per-reader PlacementCache slots; 0 = auto (16x file_sets, floor
  /// 16384), which keeps direct-mapped collision misses to a few
  /// percent (the cache never resolves collisions; it just overwrites).
  std::size_t reader_cache_capacity = 0;
};

/// One concurrently-served lookup, replayable: `generation` names the
/// exact published configuration it was answered from.
struct Sample {
  std::uint64_t fingerprint = 0;
  std::uint64_t generation = 0;
  core::LocateResult result;
};

/// One recorded control-plane op. Retune reports are stored verbatim so
/// replay feeds the tuner bit-identical inputs.
struct WriterOp {
  enum class Kind : std::uint8_t { kRetune, kFail, kAdd };
  Kind kind = Kind::kRetune;
  ServerId server;  ///< kFail / kAdd
  std::vector<core::ServerReport> reports;  ///< kRetune
  std::uint64_t generation_after = 0;       ///< map generation post-op
};

/// Any-thread snapshot of serving progress (single-writer atomics).
struct LiveStats {
  std::uint64_t lookups = 0;
  std::uint64_t batches = 0;
  core::PlacementCache::Stats cache;  ///< summed across readers
};

struct ServeResult {
  std::uint32_t threads = 0;
  double seconds = 0.0;  ///< measured serving wall time
  std::uint64_t lookups = 0;
  double lookups_per_second = 0.0;
  core::PlacementCache::Stats cache;
  /// Per-lookup latency derived from per-batch timing (ns).
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  /// Per-lookup latency distribution (ns), merged across readers; the
  /// fixed log2 buckets merge again across runs (obs::Histogram::merge).
  obs::Histogram latency_ns{1.0, 40};
  /// Control plane.
  std::uint64_t ops_applied = 0;
  std::uint64_t snapshots_published = 0;
  std::uint64_t snapshots_freed = 0;
  std::size_t snapshots_pending = 0;  ///< retired, not yet reclaimed
  std::uint64_t final_generation = 0;
  /// Order-independent fold of every served result (XOR of per-reader
  /// mix64 chains): two runs serving the same answers agree on it.
  std::uint64_t digest = 0;
  std::size_t samples = 0;
};

/// check_equivalence() verdict. ok() is the serving-mode correctness
/// claim: concurrency changed no answer.
struct EquivalenceReport {
  std::size_t samples_checked = 0;
  std::size_t mismatches = 0;
  /// Samples whose generation never appeared at a replayed op boundary
  /// (must be 0: readers can only pin published configurations).
  std::size_t unmatched_generation = 0;
  /// mix64 fold over (fingerprint, generation, result) of every checked
  /// sample, in (generation, fingerprint) order — the serve-smoke gate
  /// logs this as the run's equivalence digest.
  std::uint64_t digest = 0;
  [[nodiscard]] bool ok() const noexcept {
    return mismatches == 0 && unmatched_generation == 0;
  }
};

class LookupService {
 public:
  explicit LookupService(ServeConfig config);
  /// Joins everything if still running.
  ~LookupService();

  LookupService(const LookupService&) = delete;
  LookupService& operator=(const LookupService&) = delete;

  /// Launch the writer and the readers. Idempotent-hostile: once per
  /// service instance.
  void start();

  /// Ask everyone to wind down (readers finish their current batch;
  /// the writer abandons any ops not yet applied) and join. Safe to
  /// call with readers mid-epoch — that is the shutdown the stress
  /// test exercises.
  void stop();

  /// start(), serve for the configured window, stop(), summarize.
  ServeResult run();

  /// Any-thread progress probe; safe while readers are running (the
  /// per-reader counters and cache stats are single-writer atomics).
  [[nodiscard]] LiveStats live_stats() const;

  [[nodiscard]] bool running() const noexcept {
    return started_ && !joined_;
  }

  /// Post-stop: the recorded control-plane log and served samples.
  [[nodiscard]] const std::vector<WriterOp>& ops() const;
  [[nodiscard]] std::vector<Sample> all_samples() const;
  [[nodiscard]] const ServeResult& result() const;

  /// Post-stop: replay ops() sequentially on a fresh AnuSystem and
  /// check every sample bit-identical at its generation.
  [[nodiscard]] EquivalenceReport check_equivalence() const;

  /// Fold a ServeResult + EquivalenceReport into a metrics registry
  /// (serve_* names; the driver exports it like any run snapshot).
  static void harvest(const ServeResult& result, obs::Registry& registry);

 private:
  /// Everything one reader thread owns, cache-line padded so neighbours
  /// never false-share the hot counters.
  struct alignas(64) ReaderState {
    ReaderState(std::uint64_t stream_seed, std::size_t cache_capacity,
                std::uint32_t batch_size)
        : cache(cache_capacity),
          rng(stream_seed),
          batch_fps(batch_size),
          batch_results(batch_size) {}
    core::PlacementCache cache;
    sim::Xoshiro256 rng;
    /// run_batch staging, preallocated so the hot path never allocates
    /// (H1): the batch's drawn fingerprints and their batched answers.
    std::vector<std::uint64_t> batch_fps;
    std::vector<core::LocateResult> batch_results;
    std::uint64_t digest = 0;
    std::uint64_t batch_count = 0;
    std::vector<Sample> samples;          ///< reader-confined until join
    std::vector<double> batch_ns;         ///< per-lookup ns, one per batch
    obs::Histogram latency_ns{1.0, 40};   ///< same values, mergeable form
    std::atomic<std::uint64_t> lookups{0};   ///< single-writer, any-reader
    std::atomic<std::uint64_t> batches{0};   ///< single-writer, any-reader
  };

  void writer_loop();
  void reader_loop(std::size_t idx);
  /// The serving hot path: `n` cached lookups against the pinned
  /// snapshot's map — drawn into preallocated staging, resolved with one
  /// batched cache.locate_many sweep, then digest-folded in draw order
  /// (bit-identical to the per-lookup loop: the rng drives only the
  /// draws, and locate_many preserves per-element results, counters, and
  /// cache state). Allocation/lock/sleep-free by rule H1
  /// (tools/anufs_lint.py walks its call graph).
  ANUFS_HOT void run_batch(ReaderState& r, const core::PlacementMap& map,
                           std::uint32_t n);
  /// Off the hot path: one extra validated lookup recorded for replay.
  ANUFS_COLD void record_sample(ReaderState& r, const Snapshot& snap);

  /// Build (and record) the next churn op; returns false when the op
  /// budget is exhausted.
  bool apply_next_op();
  void apply_op(core::AnuSystem& system, const WriterOp& op) const;

  [[nodiscard]] bool readers_warmed() const;

  ServeConfig config_;
  std::vector<std::uint64_t> fingerprints_;  ///< immutable working set
  std::vector<ServerId> initial_ids_;        ///< replay starts from these
  std::unique_ptr<core::AnuSystem> system_;  ///< writer-confined
  SnapshotStore store_;
  std::vector<std::unique_ptr<ReaderState>> readers_;

  // Writer-confined churn state.
  sim::Xoshiro256 writer_rng_;
  std::vector<WriterOp> ops_;
  /// Fault-plan membership events (true = fail), time-ordered but stored
  /// reversed so consumption is pop_back().
  std::vector<std::pair<bool, ServerId>> plan_events_;
  std::uint32_t next_fresh_server_ = 0;
  std::vector<ServerId> failed_pool_;
  bool map_dirty_ = false;  ///< set by the RegionMap mutation hook

  std::atomic<bool> stop_{false};
  std::atomic<bool> writer_done_{false};
  bool started_ = false;
  bool joined_ = false;
  /// Readers run as long-lived tasks on the project's worker pool (one
  /// per pool thread); the writer gets a dedicated thread so the
  /// control plane never queues behind a reader.
  std::unique_ptr<sim::ThreadPool> pool_;
  std::thread writer_;
  std::uint64_t serve_begin_ns_ = 0;
  ServeResult result_;
};

}  // namespace anufs::serve
