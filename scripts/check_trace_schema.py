#!/usr/bin/env python3
"""Validate an anufs JSONL trace: every line is a JSON object with the
t/seq/cat/name/args shape and a known category. Usage:
    check_trace_schema.py <trace.jsonl>
"""
import json
import sys

CATEGORIES = {"delegate", "tuner", "move", "cache", "fault", "sched",
              "control"}


def fail(line_no, why):
    sys.exit(f"{sys.argv[1]}:{line_no}: {why}")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    last_seq = -1
    events = 0
    with open(sys.argv[1], encoding="utf-8") as fh:
        for i, line in enumerate(fh, 1):
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                fail(i, f"not JSON: {e}")
            if not isinstance(event, dict):
                fail(i, "not a JSON object")
            for key, kind in [("t", (int, float)), ("seq", int),
                              ("cat", str), ("name", str), ("args", dict)]:
                if not isinstance(event.get(key), kind):
                    fail(i, f"missing or mistyped '{key}'")
            if event["cat"] not in CATEGORIES:
                fail(i, f"unknown category '{event['cat']}'")
            if event["seq"] <= last_seq:
                fail(i, f"seq not increasing ({event['seq']} after {last_seq})")
            last_seq = event["seq"]
            events += 1
    print(f"{sys.argv[1]}: ok ({events} events)")


if __name__ == "__main__":
    main()
