#!/usr/bin/env bash
# Recorded performance trajectory for the event engine and the request
# hot path. Produces BENCH_core.json at the repo root: one snapshot of
#
#   * the core microbenchmarks (google-benchmark JSON, bench/micro_core):
#     hash probe, cached vs uncached locate, retune, scheduler throughput
#   * an end-to-end multi-seed sweep (tools/anufs_sim --sweep) wall clock
#   * optionally, the same sweep on a pre-change binary for a recorded
#     before/after speedup (--baseline-bin)
#
# Usage:
#   ./scripts/bench.sh                          # measure, write BENCH_core.json
#   ./scripts/bench.sh --out /tmp/b.json        # alternate output path
#   ./scripts/bench.sh --baseline-bin OLD_SIM   # also record sweep speedup
#   ./scripts/bench.sh --quick                  # smoke settings (CI)
#   ./scripts/bench.sh --control-plane          # re-measure only the
#                                               # control-plane group
#                                               # (BM_Retune/{64,512,4096},
#                                               # BM_RetuneChanged, rebalance,
#                                               # churn) and merge it into an
#                                               # existing BENCH_core.json
#                                               # without re-running the sweep
#   ./scripts/bench.sh --batch                  # re-measure only the batched
#                                               # locate group (BM_LocateBatch,
#                                               # BM_LocateBatchCached,
#                                               # BM_ServeLocateBatch + their
#                                               # scalar baselines) and merge
#                                               # it as the `batch` group into
#                                               # an existing BENCH_core.json
#   ./scripts/bench.sh --policies               # re-measure only the policy-
#                                               # zoo decision paths
#                                               # (BM_PowDChoose,
#                                               # BM_PowDRebalance,
#                                               # BM_JiqRebalance) and merge
#                                               # them as the `policies` group
#                                               # into an existing
#                                               # BENCH_core.json
#
# The sweep scenario is fixed (synthetic workload, 5 heterogeneous
# servers, membership churn, 30 seeds, --jobs 1) so successive snapshots
# are comparable; the engine's events/sec line printed by anufs_sim is
# captured as a cross-check. Numbers are machine-dependent: compare
# trajectories recorded on the same machine.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

OUT="$ROOT/BENCH_core.json"
BASELINE_BIN=""
MIN_TIME=0.5
SWEEP="seed=1..30"
CONTROL_ONLY=0
BATCH_ONLY=0
POLICIES_ONLY=0
while [ $# -gt 0 ]; do
  case "$1" in
    --out) OUT="$2"; shift 2 ;;
    --baseline-bin) BASELINE_BIN="$2"; shift 2 ;;
    --quick) MIN_TIME=0.05; SWEEP="seed=1..5"; shift ;;
    --control-plane) CONTROL_ONLY=1; shift ;;
    --batch) BATCH_ONLY=1; shift ;;
    --policies) POLICIES_ONLY=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

# jq fragment shared by both modes: google-benchmark JSON -> name-keyed
# map, plus the control-plane summary group. BM_Retune is the
# steady-state (unchanged-round) path, BM_RetuneChanged the forced full
# recompute; the 512/64 ratio is the scaling check — the old full walk
# put it near 20x (tree constants on top of 8x servers), the memo's
# bitwise compare keeps it at the ~6-7x of pure memory bandwidth.
JQ_BENCH='
  ($micro[0].benchmarks | map({(.name): {time_ns: .real_time,
                                         cpu_ns: .cpu_time,
                                         hit_rate: (.hit_rate // null)}})
     | add) as $bench |
  {
    retune_ns: {
      "64":   $bench["BM_Retune/64"].time_ns,
      "512":  $bench["BM_Retune/512"].time_ns,
      "4096": $bench["BM_Retune/4096"].time_ns
    },
    retune_changed_ns: {
      "64":   $bench["BM_RetuneChanged/64"].time_ns,
      "512":  $bench["BM_RetuneChanged/512"].time_ns,
      "4096": $bench["BM_RetuneChanged/4096"].time_ns
    },
    retune_512_over_64:
      (if $bench["BM_Retune/64"] then
         ($bench["BM_Retune/512"].time_ns / $bench["BM_Retune/64"].time_ns)
       else null end),
    membership_churn_ns: {
      "5":  $bench["BM_MembershipChurn/5"].time_ns,
      "64": $bench["BM_MembershipChurn/64"].time_ns
    }
  } as $control |
'

if [ "$CONTROL_ONLY" -eq 1 ]; then
  echo "== build: default (micro_core only)"
  cmake --preset default >/dev/null
  cmake --build --preset default \
    -j "${ANUFS_JOBS:-$(nproc 2>/dev/null || echo 2)}" \
    --target micro_core >/dev/null
  MICRO="$ROOT/build/bench/micro_core"
  echo "== micro (control-plane group): $MICRO (min_time=${MIN_TIME}s)"
  MICRO_JSON="$(mktemp)"
  "$MICRO" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    --benchmark_filter='BM_Retune|BM_RetuneChanged|BM_Rebalance|BM_MembershipChurn' \
    >"$MICRO_JSON" 2>/dev/null
  BASE='{"schema":"anufs-bench-v1"}'
  if [ -f "$OUT" ]; then BASE="$(cat "$OUT")"; fi
  TMP="$(mktemp)"
  jq -n \
    --slurpfile micro "$MICRO_JSON" \
    --argjson base "$BASE" \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    "$JQ_BENCH"'
    $base * {
      recorded_at: $date,
      commit: $commit,
      micro: (($base.micro // {}) + $bench),
      control_plane: $control
    }' >"$TMP"
  mv "$TMP" "$OUT"
  rm -f "$MICRO_JSON"
  echo "== merged control-plane group into $OUT"
  jq '.control_plane' "$OUT"
  exit 0
fi

# jq fragment for the batched-locate group: per-element costs (the
# benchmark's real_time is per whole batch) plus the headline speedup —
# uncached batch/64 against the scalar uncached probe chain at the same
# 64-server cluster. The acceptance bar for the batched path is >= 4x.
JQ_BATCH='
  ($micro[0].benchmarks | map({(.name): {time_ns: .real_time,
                                         cpu_ns: .cpu_time,
                                         hit_rate: (.hit_rate // null)}})
     | add) as $bench |
  {
    locate_batch_per_elem_ns: {
      "1":    ($bench["BM_LocateBatch/1"].time_ns / 1),
      "8":    ($bench["BM_LocateBatch/8"].time_ns / 8),
      "64":   ($bench["BM_LocateBatch/64"].time_ns / 64),
      "1024": ($bench["BM_LocateBatch/1024"].time_ns / 1024)
    },
    locate_batch_cached_per_elem_ns: {
      "1":    ($bench["BM_LocateBatchCached/1"].time_ns / 1),
      "8":    ($bench["BM_LocateBatchCached/8"].time_ns / 8),
      "64":   ($bench["BM_LocateBatchCached/64"].time_ns / 64),
      "1024": ($bench["BM_LocateBatchCached/1024"].time_ns / 1024)
    },
    serve_locate_batch_per_elem_ns: {
      "1":   ($bench["BM_ServeLocateBatch/1"].time_ns / 1),
      "64":  ($bench["BM_ServeLocateBatch/64"].time_ns / 64),
      "256": ($bench["BM_ServeLocateBatch/256"].time_ns / 256)
    },
    scalar_locate_uncached_ns_64: $bench["BM_LocateUncached/64"].time_ns,
    scalar_serve_locate_per_elem_ns_64:
      ($bench["BM_ServeLocate/64"].time_ns / 64),
    batch64_uncached_speedup_vs_scalar:
      ($bench["BM_LocateUncached/64"].time_ns /
       ($bench["BM_LocateBatch/64"].time_ns / 64))
  } as $batch |
'

if [ "$BATCH_ONLY" -eq 1 ]; then
  echo "== build: default (micro_core only)"
  cmake --preset default >/dev/null
  cmake --build --preset default \
    -j "${ANUFS_JOBS:-$(nproc 2>/dev/null || echo 2)}" \
    --target micro_core >/dev/null
  MICRO="$ROOT/build/bench/micro_core"
  echo "== micro (batch group): $MICRO (min_time=${MIN_TIME}s)"
  MICRO_JSON="$(mktemp)"
  "$MICRO" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    --benchmark_filter='BM_Locate|BM_ServeLocate' \
    >"$MICRO_JSON" 2>/dev/null
  BASE='{"schema":"anufs-bench-v1"}'
  if [ -f "$OUT" ]; then BASE="$(cat "$OUT")"; fi
  TMP="$(mktemp)"
  jq -n \
    --slurpfile micro "$MICRO_JSON" \
    --argjson base "$BASE" \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    "$JQ_BATCH"'
    ($micro[0].benchmarks | map({(.name): {time_ns: .real_time,
                                           cpu_ns: .cpu_time,
                                           hit_rate: (.hit_rate // null)}})
       | add) as $bench |
    $base * {
      recorded_at: $date,
      commit: $commit,
      micro: (($base.micro // {}) + $bench),
      batch: $batch
    }' >"$TMP"
  mv "$TMP" "$OUT"
  rm -f "$MICRO_JSON"
  echo "== merged batch group into $OUT"
  jq '.batch' "$OUT"
  exit 0
fi

# jq fragment for the policy-zoo group: the pow-d sampling kernel at
# three cluster sizes, plus a full rebalance round (reports -> EWMA ->
# shed -> fresh placement draw) for each zoo policy at 5 and 64
# servers. choose() is the per-placement inner loop, so it carries the
# latency budget; the rebalance rounds are control-plane work and only
# need to stay far under the reconfiguration period.
JQ_POLICIES='
  ($micro[0].benchmarks | map({(.name): {time_ns: .real_time,
                                         cpu_ns: .cpu_time,
                                         hit_rate: (.hit_rate // null)}})
     | add) as $bench |
  {
    powd_choose_ns: {
      "5":   $bench["BM_PowDChoose/5"].time_ns,
      "64":  $bench["BM_PowDChoose/64"].time_ns,
      "512": $bench["BM_PowDChoose/512"].time_ns
    },
    powd_rebalance_ns: {
      "5":  $bench["BM_PowDRebalance/5"].time_ns,
      "64": $bench["BM_PowDRebalance/64"].time_ns
    },
    jiq_rebalance_ns: {
      "5":  $bench["BM_JiqRebalance/5"].time_ns,
      "64": $bench["BM_JiqRebalance/64"].time_ns
    }
  } as $policies |
'

if [ "$POLICIES_ONLY" -eq 1 ]; then
  echo "== build: default (micro_core only)"
  cmake --preset default >/dev/null
  cmake --build --preset default \
    -j "${ANUFS_JOBS:-$(nproc 2>/dev/null || echo 2)}" \
    --target micro_core >/dev/null
  MICRO="$ROOT/build/bench/micro_core"
  echo "== micro (policy-zoo group): $MICRO (min_time=${MIN_TIME}s)"
  MICRO_JSON="$(mktemp)"
  "$MICRO" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    --benchmark_filter='BM_PowD|BM_Jiq' \
    >"$MICRO_JSON" 2>/dev/null
  BASE='{"schema":"anufs-bench-v1"}'
  if [ -f "$OUT" ]; then BASE="$(cat "$OUT")"; fi
  TMP="$(mktemp)"
  jq -n \
    --slurpfile micro "$MICRO_JSON" \
    --argjson base "$BASE" \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    "$JQ_POLICIES"'
    $base * {
      recorded_at: $date,
      commit: $commit,
      micro: (($base.micro // {}) + $bench),
      policies: $policies
    }' >"$TMP"
  mv "$TMP" "$OUT"
  rm -f "$MICRO_JSON"
  echo "== merged policy-zoo group into $OUT"
  jq '.policies' "$OUT"
  exit 0
fi

echo "== build: default"
cmake --preset default >/dev/null
cmake --build --preset default -j "${ANUFS_JOBS:-$(nproc 2>/dev/null || echo 2)}" \
  --target micro_core anufs_sim_cli >/dev/null

MICRO="$ROOT/build/bench/micro_core"
SIM="$ROOT/build/tools/anufs_sim"

echo "== micro: $MICRO (min_time=${MIN_TIME}s)"
MICRO_JSON="$(mktemp)"
"$MICRO" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
  >"$MICRO_JSON" 2>/dev/null

SCENARIO="$(mktemp)"
cat >"$SCENARIO" <<'EOF'
workload synthetic
policy anu
servers 1,3,5,7,9
period 120
seed 42
san off
detector off
movement on
fail 1200 4
recover 2400 4
add 3600 5 9.0
emit summary
EOF

# Wall-clock a sweep binary; echoes "<seconds> <engine line>".
time_sweep() {
  local bin="$1" out elapsed start end
  start=$(date +%s%N)
  out="$("$bin" --jobs 1 --sweep "$SWEEP" "$SCENARIO")"
  end=$(date +%s%N)
  elapsed=$(awk -v s="$start" -v e="$end" 'BEGIN { printf "%.3f", (e - s) / 1e9 }')
  echo "$elapsed"
  echo "$out" | grep '^engine' || true
}

echo "== sweep: $SIM --jobs 1 --sweep $SWEEP"
mapfile -t SWEEP_RESULT < <(time_sweep "$SIM")
SWEEP_SECONDS="${SWEEP_RESULT[0]}"
SWEEP_ENGINE="${SWEEP_RESULT[1]:-}"
echo "   ${SWEEP_SECONDS}s | ${SWEEP_ENGINE}"

BASELINE_SECONDS=null
BASELINE_ENGINE=""
if [ -n "$BASELINE_BIN" ]; then
  echo "== sweep (baseline): $BASELINE_BIN"
  mapfile -t BASE_RESULT < <(time_sweep "$BASELINE_BIN")
  BASELINE_SECONDS="${BASE_RESULT[0]}"
  BASELINE_ENGINE="${BASE_RESULT[1]:-}"
  echo "   ${BASELINE_SECONDS}s | ${BASELINE_ENGINE}"
fi

jq -n \
  --slurpfile micro "$MICRO_JSON" \
  --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  --arg commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  --arg host "$(uname -sr)" \
  --arg sweep "$SWEEP" \
  --arg sweep_engine "$SWEEP_ENGINE" \
  --arg baseline_engine "$BASELINE_ENGINE" \
  --argjson sweep_seconds "$SWEEP_SECONDS" \
  --argjson baseline_seconds "$BASELINE_SECONDS" \
  "$JQ_BENCH""$JQ_BATCH""$JQ_POLICIES"'
  {
    schema: "anufs-bench-v1",
    recorded_at: $date,
    commit: $commit,
    host: $host,
    micro: $bench,
    derived: {
      locate_cached_speedup_64: (
        $bench["BM_LocateUncached/64"].time_ns /
        $bench["BM_LocateCached/64"].time_ns),
      scheduler_events_per_sec: (
        1e9 / $bench["BM_SchedulerThroughput"].time_ns)
    },
    control_plane: $control,
    batch: $batch,
    policies: $policies,
    sweep: {
      scenario: "synthetic anu 5-server churn",
      sweep: $sweep,
      jobs: 1,
      seconds: $sweep_seconds,
      engine: $sweep_engine,
      baseline_seconds: $baseline_seconds,
      baseline_engine: (if $baseline_engine == "" then null
                        else $baseline_engine end),
      speedup_vs_baseline: (if $baseline_seconds == null then null
                            else ($baseline_seconds / $sweep_seconds) end)
    }
  }' >"$OUT"

rm -f "$MICRO_JSON" "$SCENARIO"
echo "== wrote $OUT"
jq '.derived, .sweep.seconds, .sweep.speedup_vs_baseline' "$OUT"
