#!/usr/bin/env bash
# Full reproduction: build, test, regenerate every figure/table into
# results/, and print a one-line summary per experiment.
#
#   ./scripts/repro.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
RESULTS="$ROOT/results"

cmake -B "$BUILD" -G Ninja -S "$ROOT"
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

mkdir -p "$RESULTS"
for bin in "$BUILD"/bench/*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  case "$name" in
    *.cmake|CMakeFiles|*.a) continue ;;
  esac
  echo "== $name"
  "$bin" > "$RESULTS/$name.txt"
  # First comment line doubles as the experiment's summary.
  head -1 "$RESULTS/$name.txt"
done

echo
echo "All outputs in $RESULTS/ — see EXPERIMENTS.md for the"
echo "paper-vs-measured discussion of each."
