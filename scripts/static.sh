#!/usr/bin/env bash
# Project-invariant static analysis gate (DESIGN.md §6h):
#
#   lint           tools/anufs_lint.py over src/ — D1 determinism,
#                  H1 hot-path allocation freedom, T1 trace-schema sync,
#                  G1 generation-stamp discipline. Needs only python3.
#   fixtures       tests/lint_fixture_test.py — proves every rule fires
#                  on the bad examples in tests/lint_fixtures/ and that
#                  safe() waivers suppress.
#   thread-safety  builds the `clang` preset, turning the capability
#                  annotations in src/common/thread_safety.h into
#                  compile-time lock-discipline errors
#                  (-Werror=thread-safety). Skips without clang++.
#
#   ./scripts/static.sh                  # all stages
#   ./scripts/static.sh lint fixtures    # a subset, in order
#   ./scripts/static.sh --build-dir build-foo lint   # another compile db
#
# A stage whose toolchain is missing SKIPS rather than fails: exit 0
# standalone, or --skip-exit-code N (ctest SKIP_RETURN_CODE protocol)
# when EVERY requested stage skipped. Findings are always hard failures.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

BUILD_DIR="$ROOT/build"
SKIP_CODE=0
JOBS="${ANUFS_JOBS:-$(nproc 2>/dev/null || echo 2)}"
STAGES=()
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --skip-exit-code) SKIP_CODE="$2"; shift 2 ;;
    --jobs) JOBS="$2"; shift 2 ;;
    *) STAGES+=("$1"); shift ;;
  esac
done
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(lint fixtures thread-safety)
fi

RAN=0
for stage in "${STAGES[@]}"; do
  case "$stage" in
    lint)
      if ! command -v python3 >/dev/null 2>&1; then
        echo "static.sh: python3 not found; skipping anufs_lint" >&2
        continue
      fi
      echo "== static: anufs_lint (D1/H1/T1/G1)"
      python3 tools/anufs_lint.py --root "$ROOT" \
        --compile-db "$BUILD_DIR/compile_commands.json"
      RAN=1
      ;;
    fixtures)
      if ! command -v python3 >/dev/null 2>&1; then
        echo "static.sh: python3 not found; skipping lint fixtures" >&2
        continue
      fi
      echo "== static: lint fixtures"
      python3 tests/lint_fixture_test.py
      RAN=1
      ;;
    thread-safety)
      CXX_BIN="${ANUFS_CLANGXX:-clang++}"
      if ! command -v "$CXX_BIN" >/dev/null 2>&1; then
        echo "static.sh: $CXX_BIN not found; skipping thread-safety build" >&2
        continue
      fi
      echo "== static: clang thread-safety build (-Werror=thread-safety)"
      cmake --preset clang
      cmake --build --preset clang -j "$JOBS"
      RAN=1
      ;;
    *)
      echo "static.sh: unknown stage '$stage'" >&2
      exit 2
      ;;
  esac
done

if [ "$RAN" -eq 0 ]; then
  echo "static.sh: every requested stage skipped" >&2
  exit "$SKIP_CODE"
fi
echo "static.sh: clean"
