#!/usr/bin/env bash
# clang-format wrapper (style in .clang-format, which matches the
# existing hand-written layout: Google base, 80 columns, left-aligned
# pointers/references).
#
#   ./scripts/format.sh --check file.cpp ...  # diff-exit-nonzero, no edits
#   ./scripts/format.sh file.cpp ...          # format in place
#   ./scripts/format.sh --check               # check every tracked source
#
# Policy: no mass reformat — run --check on the files a change touches.
# Skips (exit 0) when clang-format is not installed.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

CHECK=0
FILES=()
while [ $# -gt 0 ]; do
  case "$1" in
    --check) CHECK=1; shift ;;
    *) FILES+=("$1"); shift ;;
  esac
done

FMT="${ANUFS_CLANG_FORMAT:-clang-format}"
if ! command -v "$FMT" >/dev/null 2>&1; then
  echo "format.sh: $FMT not found; skipping format check" >&2
  exit 0
fi

if [ ${#FILES[@]} -eq 0 ]; then
  mapfile -t FILES < <(find src tools bench tests examples \
    \( -name '*.cpp' -o -name '*.h' \) | sort)
fi

if [ "$CHECK" -eq 1 ]; then
  "$FMT" --dry-run --Werror "${FILES[@]}"
  echo "format.sh: ${#FILES[@]} files clean"
else
  "$FMT" -i "${FILES[@]}"
  echo "format.sh: formatted ${#FILES[@]} files"
fi
