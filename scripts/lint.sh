#!/usr/bin/env bash
# Static-analysis gate: clang-tidy (config in .clang-tidy: bugprone-*,
# concurrency-*, performance-*, cert-err*) over every first-party
# translation unit in src/ tools/ bench/ tests/, driven by the compile
# database the default preset exports.
#
#   ./scripts/lint.sh                        # lint everything
#   ./scripts/lint.sh src/core/region_map.cpp ...   # lint specific files
#   ./scripts/lint.sh --build-dir build-foo  # use another compile db
#   ./scripts/lint.sh --jobs 8               # explicit TU parallelism
#                                            # (default: ANUFS_JOBS or nproc)
#
# When clang-tidy is not installed the gate SKIPS rather than fails:
# exit 0 standalone, or --skip-exit-code N for ctest's SKIP_RETURN_CODE
# protocol. Findings are always hard failures — the codebase carries no
# NOLINT suppressions and new ones should not be introduced.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

BUILD_DIR="$ROOT/build"
SKIP_CODE=0
JOBS="${ANUFS_JOBS:-$(nproc 2>/dev/null || echo 2)}"
FILES=()
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --skip-exit-code) SKIP_CODE="$2"; shift 2 ;;
    --jobs) JOBS="$2"; shift 2 ;;
    *) FILES+=("$1"); shift ;;
  esac
done

TIDY="${ANUFS_CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "lint.sh: $TIDY not found; skipping static analysis" >&2
  exit "$SKIP_CODE"
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint.sh: generating compile database in $BUILD_DIR"
  if [ "$BUILD_DIR" = "$ROOT/build" ]; then
    # The default preset IS this build dir; configuring through it keeps
    # the database identical to what every other gate analyzes (a bare
    # `cmake -B` would silently diverge from the preset's cache).
    cmake --preset default >/dev/null
  else
    cmake -B "$BUILD_DIR" -S "$ROOT" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  fi
fi

if [ ${#FILES[@]} -eq 0 ]; then
  mapfile -t FILES < <(find src tools bench tests -name '*.cpp' | sort)
fi

echo "lint.sh: $TIDY over ${#FILES[@]} files ($JOBS jobs)"
FAIL=0
printf '%s\n' "${FILES[@]}" |
  xargs -P "$JOBS" -n 8 "$TIDY" -p "$BUILD_DIR" --quiet || FAIL=1

if [ "$FAIL" -ne 0 ]; then
  echo "lint.sh: clang-tidy found problems" >&2
  exit 1
fi
echo "lint.sh: clean"
