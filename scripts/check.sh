#!/usr/bin/env bash
# CI-style gate: build the normal config AND the ASan/UBSan config, run
# the full test suite under both. The sanitizer config is what keeps the
# hash::from_double float->int overflow (and friends) from regressing:
# the UBSan build traps on any out-of-range float->int conversion.
#
#   ./scripts/check.sh          # both configs
#   ./scripts/check.sh default  # just the normal config
#   ./scripts/check.sh sanitize # just the sanitizer config
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

JOBS="${ANUFS_JOBS:-$(nproc 2>/dev/null || echo 2)}"
PRESETS=("${@:-default}")
if [ $# -eq 0 ]; then
  PRESETS=(default sanitize)
fi

for preset in "${PRESETS[@]}"; do
  echo "== configure: $preset"
  cmake --preset "$preset"
  echo "== build: $preset"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "== test: $preset"
  ctest --preset "$preset" -j "$JOBS"
done

echo "check.sh: all configs green"
