#!/usr/bin/env bash
# CI-style gate: build + full test suite under every config, then the
# static-analysis pass.
#
#   default   RelWithDebInfo — the reference build
#   sanitize  ASan + UBSan — guards e.g. the hash::from_double
#             float->int overflow clamp
#   tsan      ThreadSanitizer — guards the run-level parallelism
#             (sim/thread_pool, driver/parallel_runner, bench --jobs);
#             any cross-run data race fails the suite
#   lint      clang-tidy over src/ tools/ bench/ tests/ (skips when
#             clang-tidy is not installed)
#   static    project-invariant analysis (scripts/static.sh): anufs_lint
#             D1/H1/T1/G1 over src/, the lint-fixture proof, and — when
#             clang++ exists — the thread-safety capability-analysis
#             build of the `clang` preset; each sub-stage skips
#             gracefully when its toolchain is missing
#   trace-smoke  run anufs_sim --trace on a tiny scenario (default
#             preset's build) and validate the exported JSONL against
#             scripts/check_trace_schema.py
#   retune-smoke  replay the 64-server retune-equivalence property
#             (incremental control plane bit-identical to the full
#             walk, auditor forced on) from the default preset's build
#             — a fast tripwire for anyone touching the tuner or
#             region map without running the full property suite
#   batch-smoke  replay the locate_many churn interleavings (batched
#             answers bit-identical to the scalar sequence, cache stats
#             included, auditor forced on) from the default preset's
#             build — the tripwire for anyone touching the mixers,
#             the owner-table layout, or the batch cache path
#   serve-smoke  a 2-thread 1-second anufs_serve run (default preset's
#             build) with --check: readers under live control-plane
#             churn, every sample replayed sequentially; fails on zero
#             throughput or any equivalence mismatch and logs the run's
#             equivalence digest
#   policy-smoke  replay one short seeded crash/recover scenario under
#             the invariant auditor for EVERY policy in the registry
#             (anufs_audit --policies all) — the tripwire for anyone
#             adding a policy that runs in tests but breaks under the
#             auditor, or that falls out of the registry wiring
#
# Tests carry ctest labels (unit | property | golden | stress |
# bench-smoke | lint; see tests/CMakeLists.txt). default and sanitize
# run every label; the tsan preset excludes only `bench-smoke` (timing
# under TSan is meaningless) — golden byte-diffs, the fault property
# suite, and the serving-mode concurrency battery all must stay
# race-clean and bit-identical under TSan too.
#
#   ./scripts/check.sh                # all of the above
#   ./scripts/check.sh default        # one preset
#   ./scripts/check.sh tsan lint      # any subset, in order
#   ./scripts/check.sh --bench        # all of the above + quick bench
#                                     # trajectory (scripts/bench.sh);
#                                     # opt-in, never part of the default
#                                     # gate — timing is machine-local
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

JOBS="${ANUFS_JOBS:-$(nproc 2>/dev/null || echo 2)}"
RUN_BENCH=0
STAGES=()
for arg in "$@"; do
  if [ "$arg" = --bench ] || [ "$arg" = bench ]; then
    RUN_BENCH=1
  else
    STAGES+=("$arg")
  fi
done
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(default trace-smoke retune-smoke batch-smoke serve-smoke policy-smoke static sanitize tsan lint)
fi

for stage in "${STAGES[@]}"; do
  if [ "$stage" = lint ]; then
    echo "== lint"
    ./scripts/lint.sh
    continue
  fi
  if [ "$stage" = static ]; then
    echo "== static"
    ./scripts/static.sh --jobs "$JOBS"
    continue
  fi
  if [ "$stage" = trace-smoke ]; then
    # Needs the default preset built (runs after `default` in the full
    # gate; standalone invocations build it on demand).
    echo "== trace-smoke"
    if [ ! -x build/tools/anufs_sim ]; then
      cmake --preset default
      cmake --build --preset default -j "$JOBS" --target anufs_sim_cli
    fi
    TRACE_OUT="$(mktemp -d)/smoke.jsonl"
    printf 'workload synthetic\npolicy anu\nservers 1,3,5,7,9\nperiod 60\nduration 300\nrequests 2000\nfile_sets 40\nseed 7\nfail 120 4\nrecover 240 4\n' \
      | build/tools/anufs_sim --trace "$TRACE_OUT" - > /dev/null
    python3 scripts/check_trace_schema.py "$TRACE_OUT"
    # The Chrome export must at least be valid JSON for Perfetto.
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$TRACE_OUT.chrome.json"
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$TRACE_OUT.metrics.json"
    rm -rf "$(dirname "$TRACE_OUT")"
    continue
  fi
  if [ "$stage" = retune-smoke ]; then
    # Needs the default preset built (runs after `default` in the full
    # gate; standalone invocations build the one test on demand).
    echo "== retune-smoke"
    if [ ! -x build/tests/retune_equivalence_test ]; then
      cmake --preset default
      cmake --build --preset default -j "$JOBS" \
        --target retune_equivalence_test
    fi
    ANUFS_AUDIT=1 build/tests/retune_equivalence_test \
      --gtest_filter='RetuneEquivalence.IncrementalMatchesFullWalkAt64'
    continue
  fi
  if [ "$stage" = batch-smoke ]; then
    # Needs the default preset built (runs after `default` in the full
    # gate; standalone invocations build the one test on demand).
    echo "== batch-smoke"
    if [ ! -x build/tests/locate_batch_test ]; then
      cmake --preset default
      cmake --build --preset default -j "$JOBS" \
        --target locate_batch_test
    fi
    ANUFS_AUDIT=1 build/tests/locate_batch_test \
      --gtest_filter='LocateBatch.BatchedMatchesScalarUnderRandomInterleavings'
    continue
  fi
  if [ "$stage" = serve-smoke ]; then
    # Needs the default preset built (runs after `default` in the full
    # gate; standalone invocations build the one tool on demand).
    echo "== serve-smoke"
    if [ ! -x build/tools/anufs_serve ]; then
      cmake --preset default
      cmake --build --preset default -j "$JOBS" --target anufs_serve_cli
    fi
    SERVE_OUT="$(build/tools/anufs_serve --threads 2 --seconds 1 --check)"
    echo "$SERVE_OUT"
    # --check already fails the stage on any equivalence mismatch
    # (non-zero exit); additionally require real throughput — a serve
    # run that completed zero lookups is a hang or a dead reader pool,
    # not a pass.
    echo "$SERVE_OUT" | grep -Eq 'serve: 2 threads, [0-9.]+ s, [1-9][0-9]* lookups' \
      || { echo "serve-smoke: no lookups served" >&2; exit 1; }
    echo "$SERVE_OUT" | grep -Eq 'equivalence: .* digest [0-9a-f]+ -> OK' \
      || { echo "serve-smoke: missing equivalence digest" >&2; exit 1; }
    continue
  fi
  if [ "$stage" = policy-smoke ]; then
    # Needs the default preset built (runs after `default` in the full
    # gate; standalone invocations build the one tool on demand).
    echo "== policy-smoke"
    if [ ! -x build/tools/anufs_audit ]; then
      cmake --preset default
      cmake --build --preset default -j "$JOBS" --target anufs_audit_cli
    fi
    POLICY_OUT="$(printf 'workload synthetic\nservers 1,3,5,7,9\nperiod 60\nduration 300\nrequests 2000\nfile_sets 40\nseed 7\nmovement on\nfail 120 4\nrecover 240 4\n' \
      | build/tools/anufs_audit --policies all -)"
    echo "$POLICY_OUT"
    # Every registered policy must appear in the batch (pow-d and jiq
    # named explicitly: they are the newest and easiest to lose), and
    # the batch must have actually audited something.
    for p in pow-d jiq anu; do
      echo "$POLICY_OUT" | grep -q "policy=$p " \
        || { echo "policy-smoke: policy $p missing from --policies all" >&2; exit 1; }
    done
    continue
  fi
  echo "== configure: $stage"
  cmake --preset "$stage"
  echo "== build: $stage"
  cmake --build --preset "$stage" -j "$JOBS"
  echo "== test: $stage"
  ctest --preset "$stage" -j "$JOBS"
done

if [ "$RUN_BENCH" -eq 1 ]; then
  echo "== bench (quick trajectory)"
  ./scripts/bench.sh --quick --out "${ANUFS_BENCH_OUT:-/tmp/BENCH_core.quick.json}"
fi

echo "check.sh: all stages green"
