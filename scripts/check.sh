#!/usr/bin/env bash
# CI-style gate: build + full test suite under every config, then the
# static-analysis pass.
#
#   default   RelWithDebInfo — the reference build
#   sanitize  ASan + UBSan — guards e.g. the hash::from_double
#             float->int overflow clamp
#   tsan      ThreadSanitizer — guards the run-level parallelism
#             (sim/thread_pool, driver/parallel_runner, bench --jobs);
#             any cross-run data race fails the suite
#   lint      clang-tidy over src/ tools/ bench/ tests/ (skips when
#             clang-tidy is not installed)
#
# Tests carry ctest labels (unit | property | golden | stress; see
# tests/CMakeLists.txt). default and sanitize run every label; the tsan
# preset excludes `golden` (byte-exact output diffs add nothing to a
# race hunt and TSan slows the replays ~10x) while keeping unit,
# property, and stress — the fault property suite must stay race-clean
# and bit-identical under TSan too.
#
#   ./scripts/check.sh                # all of the above
#   ./scripts/check.sh default        # one preset
#   ./scripts/check.sh tsan lint      # any subset, in order
#   ./scripts/check.sh --bench        # all of the above + quick bench
#                                     # trajectory (scripts/bench.sh);
#                                     # opt-in, never part of the default
#                                     # gate — timing is machine-local
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

JOBS="${ANUFS_JOBS:-$(nproc 2>/dev/null || echo 2)}"
RUN_BENCH=0
STAGES=()
for arg in "$@"; do
  if [ "$arg" = --bench ] || [ "$arg" = bench ]; then
    RUN_BENCH=1
  else
    STAGES+=("$arg")
  fi
done
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(default sanitize tsan lint)
fi

for stage in "${STAGES[@]}"; do
  if [ "$stage" = lint ]; then
    echo "== lint"
    ./scripts/lint.sh
    continue
  fi
  echo "== configure: $stage"
  cmake --preset "$stage"
  echo "== build: $stage"
  cmake --build --preset "$stage" -j "$JOBS"
  echo "== test: $stage"
  ctest --preset "$stage" -j "$JOBS"
done

if [ "$RUN_BENCH" -eq 1 ]; then
  echo "== bench (quick trajectory)"
  ./scripts/bench.sh --quick --out "${ANUFS_BENCH_OUT:-/tmp/BENCH_core.quick.json}"
fi

echo "check.sh: all stages green"
